//! A deterministic, dependency-free subset of the `proptest` API.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the slice of proptest it actually uses as a local crate with the
//! same name: `proptest!`, `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`,
//! integer-range / tuple / `Just` / `any::<T>()` strategies, `prop_map`,
//! and `proptest::collection::vec`.
//!
//! Differences from the real crate, on purpose:
//!
//! * **deterministic**: cases are generated from a fixed SplitMix64 seed
//!   (override with `PROPTEST_SEED`), so failures reproduce exactly;
//! * **no shrinking**: a failing case is reported as-is
//!   (`max_shrink_iters` is accepted and ignored);
//! * **no persistence**: there is no failure regression file.

use std::fmt;

// ---------------------------------------------------------------------------
// deterministic RNG
// ---------------------------------------------------------------------------

/// SplitMix64: tiny, fast, and plenty for test-case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator. Each property gets `base_seed ^ hash(name)`.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Base seed: fixed unless `PROPTEST_SEED` overrides it.
pub fn base_seed() -> u64 {
    match std::env::var("PROPTEST_SEED") {
        Ok(s) => s.parse().unwrap_or(0x5EED_CAFE_F00D_D00D),
        Err(_) => 0x5EED_CAFE_F00D_D00D,
    }
}

/// FNV-1a, used to derive a per-property seed from its name.
pub fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------------------
// test-case errors and config
// ---------------------------------------------------------------------------

/// Why a single generated case failed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// A `prop_assert*` failed with this message.
    Fail(String),
    /// The case asked to be discarded (unused here, kept for API parity).
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure from a preformatted message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Per-property configuration (struct-update friendly, like the original).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for API parity; this runner never shrinks.
    pub max_shrink_iters: u32,
    /// Accepted for API parity; this runner never times out.
    pub timeout: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 1024,
            timeout: 0,
        }
    }
}

// ---------------------------------------------------------------------------
// strategies
// ---------------------------------------------------------------------------

pub mod strategy {
    use super::TestRng;

    /// Generates values of one type. Object-safe; combinators are `Sized`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produces one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always yields a clone of the given value.
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct OneOf<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// Builds from the macro's boxed arms. Panics on an empty list.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> OneOf<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { arms }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);

    /// Full-range generation for primitives (`any::<T>()`).
    pub trait Arbitrary {
        /// Produces one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy wrapper for [`Arbitrary`] types.
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// `proptest::collection::vec`: a vector whose length is drawn from
    /// `len` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Strategy produced by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just as JustStruct, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{ProptestConfig, TestCaseError, TestRng};

    /// `Just` is used as a constructor (`Just(x)`) in the real API.
    #[allow(non_snake_case)]
    pub fn Just<T: Clone>(v: T) -> crate::strategy::Just<T> {
        crate::strategy::Just(v)
    }
}

// ---------------------------------------------------------------------------
// macros
// ---------------------------------------------------------------------------

/// Declares property tests. Supports the common form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]
///     #[test]
///     fn holds(x in 0u32..10, v in proptest::collection::vec(0u8..4, 0..8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($config:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let seed = $crate::base_seed() ^ $crate::hash_name(stringify!($name));
                let mut rng = $crate::TestRng::new(seed);
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                    // Render inputs up front: the body may consume them by value.
                    let __inputs = ::std::string::String::new()
                        $(+ "\n    " + stringify!($arg) + " = "
                            + &::std::format!("{:?}", $arg))+;
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::TestCaseError::Reject(_)) => {}
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property `{}` failed at case {case} (seed {seed:#x}): {msg}\n  inputs:{}",
                                stringify!($name),
                                __inputs
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "{}\n  left: {:?}\n right: {:?}",
            ::std::format!($($fmt)*), a, b
        );
    }};
}

/// Fails the current case unless the two values differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_strategy_stays_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = TestRng::new(9);
        for _ in 0..200 {
            let v = Strategy::generate(&collection::vec(0u8..4, 2..6), &mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn macro_wires_args_and_asserts(x in 0u8..8, pair in (0u32..4, 1i64..5)) {
            prop_assert!(x < 8);
            prop_assert_eq!(pair.0 < 4, true);
            prop_assert_ne!(pair.1, 0);
        }
    }
}
