//! Flow-sensitive refinement of indirect references (the last box of the
//! paper's Figure 4: *"we perform a flow sensitive pointer analysis using
//! factored use-def chain to refine the μs list and the χs list. We also
//! update the SSA form if the μs and χs lists have any change."*).
//!
//! Steensgaard's analysis is flow-insensitive: a pointer that is assigned
//! `&a` on one path somewhere in the program drags `a`'s whole equivalence
//! class onto every dereference. The factored use-def chain of the SSA
//! form recovers flow sensitivity cheaply: if an access's base register
//! version chases — through copies only, stopping at φs — to a unique
//! `&global`/`&slot`, the access provably touches exactly that object, and
//! the reference can be *folded into direct form*. The rebuilt χ/μ lists
//! are then exact: a folded store strongly defines its cell instead of
//! weakly updating an entire class, and a folded load participates in
//! non-speculative PRE like any scalar variable.

use crate::stmt::{HOperand, HStmtKind, HssaFunc};
use specframe_analysis::FuncAnalyses;
use specframe_ir::FxHashMap;
use specframe_ir::{FuncId, Function, Global, Inst, MemSiteId, Module, Operand, VarId};

/// Analyzes `hf` (an already-built SSA form of `m.func(fid)`) and rewrites
/// the **base function** in `m`, folding every indirect load/store whose
/// base register provably holds a single static address into a direct
/// reference. Returns the number of references folded.
///
/// Run this before the final HSSA construction: the caller rebuilds the
/// SSA form afterwards (the paper's "update the SSA form if the lists have
/// any change").
pub fn fold_known_addresses(m: &mut Module, fid: FuncId, hf: &HssaFunc) -> usize {
    fold_known_addresses_in(m.func_mut(fid), hf)
}

/// [`fold_known_addresses`] operating on the function alone — the rewrite
/// never touches any other part of the module, so the parallel driver can
/// run it with each worker owning exactly one `&mut Function`.
pub fn fold_known_addresses_in(f: &mut Function, hf: &HssaFunc) -> usize {
    // copy chains: (reg, version) -> source operand
    let mut copy_src: FxHashMap<(VarId, u32), HOperand> = FxHashMap::default();
    for b in hf.block_ids() {
        for stmt in &hf.blocks[b.index()].stmts {
            if let HStmtKind::Copy { dst, src } = &stmt.kind {
                copy_src.insert(*dst, *src);
            }
        }
    }
    let chase = |mut o: HOperand| -> HOperand {
        for _ in 0..64 {
            match o {
                HOperand::Reg(v, ver) => match copy_src.get(&(v, ver)) {
                    Some(&next) => o = next,
                    None => break,
                },
                _ => break,
            }
        }
        o
    };

    // per memory site: the static base it folds to
    let mut folds: FxHashMap<MemSiteId, Operand> = FxHashMap::default();
    for b in hf.block_ids() {
        for stmt in &hf.blocks[b.index()].stmts {
            let (base, site) = match &stmt.kind {
                HStmtKind::Load { base, site, .. }
                | HStmtKind::CheckLoad { base, site, .. }
                | HStmtKind::Store { base, site, .. } => (*base, *site),
                _ => continue,
            };
            if !matches!(base, HOperand::Reg(..)) {
                continue; // already direct
            }
            match chase(base) {
                HOperand::GlobalAddr(g) => {
                    folds.insert(site, Operand::GlobalAddr(g));
                }
                HOperand::SlotAddr(s) => {
                    folds.insert(site, Operand::SlotAddr(s));
                }
                _ => {}
            }
        }
    }
    if folds.is_empty() {
        return 0;
    }

    // rewrite the base function
    let mut folded = 0;
    for b in &mut f.blocks {
        for inst in &mut b.insts {
            match inst {
                Inst::Load { base, site, .. }
                | Inst::CheckLoad { base, site, .. }
                | Inst::Store { base, site, .. } => {
                    if let Some(&new_base) = folds.get(site) {
                        if matches!(base, Operand::Var(_)) {
                            *base = new_base;
                            folded += 1;
                        }
                    }
                }
                _ => {}
            }
        }
    }
    folded
}

/// Convenience for callers without a pre-built SSA form: builds a throwaway
/// non-speculative HSSA, folds, and reports the count.
pub fn refine_function(m: &mut Module, fid: FuncId, aa: &specframe_alias::AliasAnalysis) -> usize {
    let fa = FuncAnalyses::compute(m.func(fid));
    let globals = m.globals.clone();
    refine_function_in(&globals, m.func_mut(fid), fid, aa, &fa)
}

/// [`refine_function`] over a pre-computed analysis cache and a worker-owned
/// `&mut Function`. Folding only rewrites instruction operands — the CFG is
/// untouched, so `fa` stays valid afterwards.
pub fn refine_function_in(
    globals: &[Global],
    f: &mut Function,
    fid: FuncId,
    aa: &specframe_alias::AliasAnalysis,
    fa: &FuncAnalyses,
) -> usize {
    let hf = crate::build::build_hssa_in(
        globals,
        f,
        fid,
        aa,
        crate::build::SpecMode::NoSpeculation,
        fa,
    );
    fold_known_addresses_in(f, &hf)
}

/// Identifies whether an HSSA statement is a direct memory access (used by
/// tests asserting the fold happened).
pub fn is_direct_access(hf: &HssaFunc, b: usize, si: usize) -> bool {
    match &hf.blocks[b].stmts[si].kind {
        HStmtKind::Load { base, .. }
        | HStmtKind::CheckLoad { base, .. }
        | HStmtKind::Store { base, .. } => !matches!(base, HOperand::Reg(..)),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_hssa, SpecMode};
    use specframe_alias::AliasAnalysis;
    use specframe_ir::parse_module;

    /// p locally points at `a` only, but Steensgaard's class for it is
    /// {a, b} because `h` is called with both addresses elsewhere.
    const SRC: &str = r#"
global a: i64[1]
global b: i64[1]

func h(r: ptr) -> i64 {
  var v: i64
entry:
  v = load.i64 [r]
  ret v
}

func f() -> i64 {
  var p: ptr
  var q: ptr
  var x: i64
  var y: i64
entry:
  p = @a
  q = @b
  store.i64 [p], 1
  x = load.i64 [q]
  store.i64 [p], 2
  y = load.i64 [q]
  x = add x, y
  ret x
}

func main(sel: i64) -> i64 {
  var r: i64
  var t: i64
entry:
  br sel, ua, ub
ua:
  r = call h(@a)
  jmp go
ub:
  r = call h(@b)
  jmp go
go:
  t = call f()
  r = add r, t
  ret r
}
"#;

    #[test]
    fn locally_exact_pointers_fold_to_direct() {
        let mut m = parse_module(SRC).unwrap();
        let aa = AliasAnalysis::analyze(&m);
        let fid = m.func_by_name("f").unwrap();

        // sanity: before refinement the store *p is indirect — a weak
        // class-level update (chi on the shared virtual variable, no strong
        // def), so the loads of *q are killed by it
        let hf0 = build_hssa(&m, fid, &aa, SpecMode::NoSpeculation);
        let store = &hf0.blocks[0].stmts[2];
        assert!(
            matches!(
                store.kind,
                crate::stmt::HStmtKind::Store { dvar_def: None, .. }
            ),
            "unrefined store must be indirect"
        );
        assert!(!store.chi.is_empty(), "indirect store must chi its class");

        let n = refine_function(&mut m, fid, &aa);
        assert_eq!(n, 4, "both stores and both loads fold");

        // after refinement, all four references are direct
        let hf1 = build_hssa(&m, fid, &aa, SpecMode::NoSpeculation);
        for si in [2usize, 3, 4, 5] {
            assert!(
                is_direct_access(&hf1, 0, si),
                "stmt {si} should be direct now"
            );
        }
        // and the store strongly defines `a` without touching `b`
        let store = &hf1.blocks[0].stmts[2];
        assert!(matches!(
            store.kind,
            crate::stmt::HStmtKind::Store {
                dvar_def: Some(_),
                ..
            }
        ));
    }

    #[test]
    fn fold_preserves_semantics_and_enables_nonspeculative_pre() {
        let mut m = parse_module(SRC).unwrap();
        let (want, s0) =
            specframe_profile::run(&m, "main", &[specframe_ir::Value::I(0)], 100_000).unwrap();
        let aa = AliasAnalysis::analyze(&m);
        let fid = m.func_by_name("f").unwrap();
        refine_function(&mut m, fid, &aa);
        specframe_ir::verify_module(&m).unwrap();
        let (got, s1) =
            specframe_profile::run(&m, "main", &[specframe_ir::Value::I(0)], 100_000).unwrap();
        assert_eq!(got, want);
        assert_eq!(s0.loads, s1.loads, "folding changes no dynamic behaviour");
    }

    #[test]
    fn phi_merged_pointers_do_not_fold() {
        let src = r#"
global a: i64[1]
global b: i64[1]

func f(sel: i64) -> i64 {
  var p: ptr
  var x: i64
entry:
  br sel, ua, ub
ua:
  p = @a
  jmp go
ub:
  p = @b
  jmp go
go:
  x = load.i64 [p]
  ret x
}
"#;
        let mut m = parse_module(src).unwrap();
        specframe_analysis::split_critical_edges(&mut m.funcs[0]);
        let aa = AliasAnalysis::analyze(&m);
        let fid = m.func_by_name("f").unwrap();
        let n = refine_function(&mut m, fid, &aa);
        assert_eq!(n, 0, "a phi-merged pointer is genuinely unknown");
    }

    #[test]
    fn pointer_arithmetic_blocks_folding() {
        let src = r#"
global a: i64[8]

func f(k: i64) -> i64 {
  var p: ptr
  var q: ptr
  var x: i64
entry:
  p = @a
  q = add p, k
  x = load.i64 [q]
  ret x
}
"#;
        let mut m = parse_module(src).unwrap();
        let aa = AliasAnalysis::analyze(&m);
        let fid = m.func_by_name("f").unwrap();
        let n = refine_function(&mut m, fid, &aa);
        assert_eq!(n, 0, "computed addresses must not fold");
    }
}
