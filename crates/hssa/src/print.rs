//! Paper-style textual dumps of the speculative SSA form.
//!
//! The output mirrors the notation of the paper's Example 1 / Figure 6:
//! χ-operators print as `a2 <- chi(a1)` (or `chi_s` when flagged), μ lists
//! as `mu(a3) mu_s(b2)`, φs as `a3 <- phi(a1, a2)`.

use crate::hvar::{HVarId, HVarKind, MemBase};
use crate::stmt::{HOperand, HStmtKind, HTerm, HssaFunc};
use specframe_ir::{Function, Global, Module};
use std::fmt::Write;

/// Renders `hf` as human-readable text.
pub fn print_hssa(m: &Module, hf: &HssaFunc) -> String {
    let names = specframe_ir::display::func_name_table(m);
    print_hssa_in(&m.globals, &names, m.func(hf.func), hf)
}

/// [`print_hssa`] over the pieces of module state a parallel pipeline
/// worker actually owns: the global table, the function-name table
/// (indexed by `FuncId`, see `specframe_ir::display::func_name_table`),
/// and the function the form was built from. Byte-for-byte identical to
/// printing through the module.
pub fn print_hssa_in(
    globals: &[Global],
    func_names: &[String],
    f: &Function,
    hf: &HssaFunc,
) -> String {
    let mut out = String::new();
    let vname = |id: HVarId| -> String {
        match hf.catalog.kind(id) {
            HVarKind::Reg(v) => {
                if (v.0 as usize) < f.vars.len() {
                    f.vars[v.index()].name.clone()
                } else {
                    let k = (v.0 - hf.first_new_var) as usize;
                    hf.new_vars
                        .get(k)
                        .map(|(n, _)| n.clone())
                        .unwrap_or_else(|| format!("v{}", v.0))
                }
            }
            HVarKind::Mem(mv) => {
                let base = match mv.base {
                    MemBase::Global(g) => globals[g.index()].name.clone(),
                    MemBase::Slot(s) => f.slots[s.index()].name.clone(),
                };
                if mv.off == 0 {
                    base
                } else {
                    format!("{base}[{}]", mv.off)
                }
            }
            HVarKind::Virt(c) => format!("vv{}", c.0),
        }
    };
    let reg_name = |v: specframe_ir::VarId| -> String {
        if (v.0 as usize) < f.vars.len() {
            f.vars[v.index()].name.clone()
        } else {
            let k = (v.0 - hf.first_new_var) as usize;
            hf.new_vars
                .get(k)
                .map(|(n, _)| n.clone())
                .unwrap_or_else(|| format!("v{}", v.0))
        }
    };
    let opnd = |o: &HOperand| -> String {
        match o {
            HOperand::Reg(v, ver) => format!("{}{}", reg_name(*v), ver),
            HOperand::ConstI(c) => format!("{c}"),
            HOperand::ConstF(c) => format!("{c}"),
            HOperand::GlobalAddr(g) => format!("@{}", globals[g.index()].name),
            HOperand::SlotAddr(s) => format!("&{}", f.slots[s.index()].name),
        }
    };

    writeln!(out, "hssa func {} {{", f.name).unwrap();
    for (bi, hb) in hf.blocks.iter().enumerate() {
        writeln!(out, "{}:", f.blocks[bi].name).unwrap();
        for phi in &hb.phis {
            let args: Vec<String> = phi
                .args
                .iter()
                .map(|a| format!("{}{}", vname(phi.var), a))
                .collect();
            writeln!(
                out,
                "  {}{} <- phi({})",
                vname(phi.var),
                phi.dest,
                args.join(", ")
            )
            .unwrap();
        }
        for s in &hb.stmts {
            let mut line = String::from("  ");
            match &s.kind {
                HStmtKind::Bin { dst, op, a, b } => {
                    write!(
                        line,
                        "{}{} = {} {}, {}",
                        reg_name(dst.0),
                        dst.1,
                        op,
                        opnd(a),
                        opnd(b)
                    )
                    .unwrap();
                }
                HStmtKind::Un { dst, op, a } => {
                    write!(line, "{}{} = {} {}", reg_name(dst.0), dst.1, op, opnd(a)).unwrap();
                }
                HStmtKind::Copy { dst, src } => {
                    write!(line, "{}{} = {}", reg_name(dst.0), dst.1, opnd(src)).unwrap();
                }
                HStmtKind::Load {
                    dst,
                    base,
                    offset,
                    ty,
                    spec,
                    dvar,
                    ..
                } => {
                    write!(
                        line,
                        "{}{} = load{}.{} [{} + {}]",
                        reg_name(dst.0),
                        dst.1,
                        spec.suffix(),
                        ty,
                        opnd(base),
                        offset
                    )
                    .unwrap();
                    if let Some((id, ver)) = dvar {
                        write!(line, "  (reads {}{})", vname(*id), ver).unwrap();
                    }
                }
                HStmtKind::CheckLoad {
                    dst,
                    base,
                    offset,
                    ty,
                    kind,
                    ..
                } => {
                    write!(
                        line,
                        "{}{} = {}.{} [{} + {}]",
                        reg_name(dst.0),
                        dst.1,
                        kind.mnemonic(),
                        ty,
                        opnd(base),
                        offset
                    )
                    .unwrap();
                }
                HStmtKind::Store {
                    base,
                    offset,
                    val,
                    ty,
                    dvar_def,
                    ..
                } => {
                    write!(
                        line,
                        "store.{} [{} + {}], {}",
                        ty,
                        opnd(base),
                        offset,
                        opnd(val)
                    )
                    .unwrap();
                    if let Some((id, ver)) = dvar_def {
                        write!(line, "  (defines {}{})", vname(*id), ver).unwrap();
                    }
                }
                HStmtKind::Call {
                    dst, callee, args, ..
                } => {
                    if let Some(d) = dst {
                        write!(line, "{}{} = ", reg_name(d.0), d.1).unwrap();
                    }
                    let a: Vec<String> = args.iter().map(&opnd).collect();
                    write!(
                        line,
                        "call {}({})",
                        func_names[callee.index()],
                        a.join(", ")
                    )
                    .unwrap();
                }
                HStmtKind::Alloc { dst, words, .. } => {
                    write!(line, "{}{} = alloc {}", reg_name(dst.0), dst.1, opnd(words)).unwrap();
                }
            }
            for mu in &s.mu {
                let tag = if mu.likely { "mu_s" } else { "mu" };
                write!(line, "  {}({}{})", tag, vname(mu.var), mu.ver).unwrap();
            }
            for chi in &s.chi {
                let tag = if chi.likely { "chi_s" } else { "chi" };
                write!(
                    line,
                    "  {}{} <- {}({}{})",
                    vname(chi.var),
                    chi.new_ver,
                    tag,
                    vname(chi.var),
                    chi.old_ver
                )
                .unwrap();
            }
            writeln!(out, "{line}").unwrap();
        }
        match hf.blocks[bi].term.as_ref() {
            Some(HTerm::Jump(t)) => writeln!(out, "  jmp {}", f.blocks[t.index()].name).unwrap(),
            Some(HTerm::Br { cond, then_, else_ }) => writeln!(
                out,
                "  br {}, {}, {}",
                opnd(cond),
                f.blocks[then_.index()].name,
                f.blocks[else_.index()].name
            )
            .unwrap(),
            Some(HTerm::Ret(None)) => writeln!(out, "  ret").unwrap(),
            Some(HTerm::Ret(Some(v))) => writeln!(out, "  ret {}", opnd(v)).unwrap(),
            None => writeln!(out, "  <no terminator>").unwrap(),
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use crate::build::{build_hssa, SpecMode};
    use specframe_alias::AliasAnalysis;
    use specframe_ir::parse_module;

    #[test]
    fn dump_shows_chi_and_mu_with_flags() {
        let src = r#"
global a: i64[1]
global b: i64[1]

func ex1(p: ptr) -> i64 {
  var x: i64
  var y: i64
entry:
  store.i64 [@a], 1
  store.i64 [p], 4
  x = load.i64 [@a]
  y = load.i64 [p]
  ret y
}

func main(sel: i64) -> i64 {
  var q: ptr
  var r: i64
entry:
  br sel, ua, ub
ua:
  q = @a
  jmp go
ub:
  q = @b
  jmp go
go:
  r = call ex1(q)
  ret r
}
"#;
        let m = parse_module(src).unwrap();
        let aa = AliasAnalysis::analyze(&m);
        let fid = m.func_by_name("ex1").unwrap();
        let hf = build_hssa(&m, fid, &aa, SpecMode::NoSpeculation);
        let dump = super::print_hssa(&m, &hf);
        assert!(dump.contains("chi_s"), "{dump}");
        assert!(dump.contains("mu_s"), "{dump}");
        assert!(dump.contains("store.i64"), "{dump}");
        // the indirect load reads mu of the vvar and both globals
        assert!(dump.contains("(defines"), "{dump}");
    }

    #[test]
    fn dump_distinguishes_weak_updates() {
        let src = r#"
global a: i64[1]
global b: i64[1]

func f(p: ptr) {
entry:
  store.i64 [p], 4
  ret
}

func main() {
entry:
  call f(@b)
  ret
}
"#;
        let m = parse_module(src).unwrap();
        let aa = AliasAnalysis::analyze(&m);
        let fid = m.func_by_name("f").unwrap();
        // heuristic mode: chi over b is weak (printed as plain chi)
        let hf = build_hssa(&m, fid, &aa, SpecMode::Heuristic);
        let dump = super::print_hssa(&m, &hf);
        assert!(
            dump.contains("chi(b0)") || dump.contains("chi(vv"),
            "{dump}"
        );
    }
}
