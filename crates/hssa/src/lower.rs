//! Out-of-SSA lowering.
//!
//! Converts an (optimized) [`HssaFunc`] back into executable base IR:
//! every `(register, version)` pair becomes a distinct IR register, register
//! φs become copies in predecessor blocks (sequentialized as parallel
//! copies), and the ghost machinery — memory/virtual variables, their φs,
//! χ/μ operators — is erased. Statements synthesized by the optimizer (site
//! [`FRESH_SITE`]) receive fresh module-unique memory sites.
//!
//! The CFG must have critical edges split before lowering whenever a block
//! with φs has a predecessor with several successors; the driver in
//! `specframe-core` guarantees this.

use crate::hvar::HVarKind;
use crate::stmt::{HOperand, HStmtKind, HTerm, HssaFunc, FRESH_SITE};
use specframe_ir::{
    Block, Function, Inst, MemSiteId, Module, Operand, Terminator, Ty, VarDecl, VarId,
};
use specframe_ir::{FxHashMap, FxHashSet};

/// First placeholder id handed out by [`lower_function`] for statements the
/// optimizer synthesized (site [`FRESH_SITE`]). Placeholders are function
/// local — the k-th fresh statement in instruction-encounter order gets
/// `LOCAL_FRESH_BASE + k` — and must be rewritten to module-unique sites via
/// [`resolve_fresh_sites`] before the function is spliced back into a
/// module. The band below `FRESH_SITE` is far above any real site id.
pub const LOCAL_FRESH_BASE: u32 = u32::MAX - (1 << 24);

/// Lowers `hf` back into `m`, replacing the body of `hf.func`.
pub fn lower_hssa(m: &mut Module, hf: &HssaFunc) {
    let (mut new_f, fresh) = lower_function(m.func(hf.func), hf);
    let first = MemSiteId(m.next_mem_site);
    m.next_mem_site += fresh;
    resolve_fresh_sites(&mut new_f, first);
    m.funcs[hf.func.index()] = new_f;
}

/// Rewrites the local fresh-site placeholders of a [`lower_function`] result
/// to module-unique ids starting at `first`, preserving encounter order.
pub fn resolve_fresh_sites(f: &mut Function, first: MemSiteId) {
    for b in &mut f.blocks {
        for inst in &mut b.insts {
            if let Inst::Load { site, .. }
            | Inst::CheckLoad { site, .. }
            | Inst::Store { site, .. } = inst
            {
                if site.0 >= LOCAL_FRESH_BASE {
                    *site = MemSiteId(first.0 + (site.0 - LOCAL_FRESH_BASE));
                }
            }
        }
    }
}

/// Lowers `hf` into a standalone [`Function`] without touching any module
/// state, so the parallel driver can run it with each worker owning exactly
/// one function. Optimizer-synthesized statements receive deterministic
/// local placeholder sites (`LOCAL_FRESH_BASE + k`, in instruction-encounter
/// order); the second return is the placeholder count. The caller splices
/// the function back in index order and calls [`resolve_fresh_sites`] with a
/// module-unique base, which reproduces the serial numbering bit for bit.
pub fn lower_function(base: &Function, hf: &HssaFunc) -> (Function, u32) {
    // variable table: original registers (version 0 keeps its id), optimizer
    // temps, then fresh ids for higher versions on demand
    let mut vars: Vec<VarDecl> = base.vars.clone();
    for (name, ty) in &hf.new_vars {
        vars.push(VarDecl {
            name: name.clone(),
            ty: *ty,
        });
    }
    let mut map: FxHashMap<(u32, u32), VarId> = FxHashMap::default();
    for i in 0..vars.len() as u32 {
        map.insert((i, 0), VarId(i));
    }
    let collapsed: FxHashSet<VarId> = hf.collapsed_vars.iter().copied().collect();
    let mut resolve = |v: VarId, ver: u32, vars: &mut Vec<VarDecl>| -> VarId {
        // collapsed registers (PRE temporaries) ignore versions entirely:
        // one home register per promoted expression
        if collapsed.contains(&v) {
            return v;
        }
        *map.entry((v.0, ver)).or_insert_with(|| {
            let d = &vars[v.index()];
            let nv = VarId::from_index(vars.len());
            let name = format!("{}.{}", d.name, ver);
            let ty = d.ty;
            vars.push(VarDecl { name, ty });
            nv
        })
    };

    let lower_opnd = |o: HOperand,
                      vars: &mut Vec<VarDecl>,
                      resolve: &mut dyn FnMut(VarId, u32, &mut Vec<VarDecl>) -> VarId|
     -> Operand {
        match o {
            HOperand::Reg(v, ver) => Operand::Var(resolve(v, ver, vars)),
            HOperand::ConstI(c) => Operand::ConstI(c),
            HOperand::ConstF(c) => Operand::ConstF(c),
            HOperand::GlobalAddr(g) => Operand::GlobalAddr(g),
            HOperand::SlotAddr(s) => Operand::SlotAddr(s),
        }
    };

    // translate statements block by block
    let block_names: Vec<String> = base.blocks.iter().map(|b| b.name.clone()).collect();
    let slots = base.slots.clone();
    let params = base.params;
    let ret_ty = base.ret_ty;
    let name = base.name.clone();

    // optimizer-synthesized statements get local placeholder sites in
    // instruction-encounter order; resolve_fresh_sites maps them to
    // module-unique ids at the driver's deterministic join point
    let mut fresh_count: u32 = 0;

    let mut blocks: Vec<Block> = Vec::with_capacity(hf.blocks.len());
    for (bi, hb) in hf.blocks.iter().enumerate() {
        let mut insts = Vec::with_capacity(hb.stmts.len());
        for s in &hb.stmts {
            let inst = match &s.kind {
                HStmtKind::Bin { dst, op, a, b } => Inst::Bin {
                    dst: resolve(dst.0, dst.1, &mut vars),
                    op: *op,
                    a: lower_opnd(*a, &mut vars, &mut resolve),
                    b: lower_opnd(*b, &mut vars, &mut resolve),
                },
                HStmtKind::Un { dst, op, a } => Inst::Un {
                    dst: resolve(dst.0, dst.1, &mut vars),
                    op: *op,
                    a: lower_opnd(*a, &mut vars, &mut resolve),
                },
                HStmtKind::Copy { dst, src } => Inst::Copy {
                    dst: resolve(dst.0, dst.1, &mut vars),
                    src: lower_opnd(*src, &mut vars, &mut resolve),
                },
                HStmtKind::Load {
                    dst,
                    base,
                    offset,
                    ty,
                    spec,
                    site,
                    ..
                } => Inst::Load {
                    dst: resolve(dst.0, dst.1, &mut vars),
                    base: lower_opnd(*base, &mut vars, &mut resolve),
                    offset: *offset,
                    ty: *ty,
                    spec: *spec,
                    site: if *site == FRESH_SITE {
                        fresh_count += 1;
                        MemSiteId(LOCAL_FRESH_BASE + (fresh_count - 1))
                    } else {
                        *site
                    },
                },
                HStmtKind::CheckLoad {
                    dst,
                    base,
                    offset,
                    ty,
                    kind,
                    site,
                    ..
                } => Inst::CheckLoad {
                    dst: resolve(dst.0, dst.1, &mut vars),
                    base: lower_opnd(*base, &mut vars, &mut resolve),
                    offset: *offset,
                    ty: *ty,
                    kind: *kind,
                    site: if *site == FRESH_SITE {
                        fresh_count += 1;
                        MemSiteId(LOCAL_FRESH_BASE + (fresh_count - 1))
                    } else {
                        *site
                    },
                },
                HStmtKind::Store {
                    base,
                    offset,
                    val,
                    ty,
                    site,
                    ..
                } => Inst::Store {
                    base: lower_opnd(*base, &mut vars, &mut resolve),
                    offset: *offset,
                    val: lower_opnd(*val, &mut vars, &mut resolve),
                    ty: *ty,
                    site: if *site == FRESH_SITE {
                        fresh_count += 1;
                        MemSiteId(LOCAL_FRESH_BASE + (fresh_count - 1))
                    } else {
                        *site
                    },
                },
                HStmtKind::Call {
                    dst,
                    callee,
                    args,
                    site,
                } => Inst::Call {
                    dst: dst.map(|d| resolve(d.0, d.1, &mut vars)),
                    callee: *callee,
                    args: args
                        .iter()
                        .map(|&a| lower_opnd(a, &mut vars, &mut resolve))
                        .collect(),
                    site: *site,
                },
                HStmtKind::Alloc { dst, words, site } => Inst::Alloc {
                    dst: resolve(dst.0, dst.1, &mut vars),
                    words: lower_opnd(*words, &mut vars, &mut resolve),
                    site: *site,
                },
            };
            insts.push(inst);
        }
        let term = match hb.term.as_ref().expect("terminator") {
            HTerm::Jump(t) => Terminator::Jump(*t),
            HTerm::Br { cond, then_, else_ } => Terminator::Br {
                cond: lower_opnd(*cond, &mut vars, &mut resolve),
                then_: *then_,
                else_: *else_,
            },
            HTerm::Ret(v) => Terminator::Ret(v.map(|v| lower_opnd(v, &mut vars, &mut resolve))),
        };
        blocks.push(Block {
            name: block_names[bi].clone(),
            insts,
            term,
        });
    }

    // register-phi elimination: parallel copies at the end of predecessors
    for (bi, hb) in hf.blocks.iter().enumerate() {
        let reg_phis: Vec<_> = hb
            .phis
            .iter()
            .filter_map(|p| match hf.catalog.kind(p.var) {
                // collapsed registers need no phi copies: every version is
                // the same register
                HVarKind::Reg(v) if !collapsed.contains(&v) => Some((v, p.dest, p.args.clone())),
                _ => None,
            })
            .collect();
        if reg_phis.is_empty() {
            continue;
        }
        for (pi, &pred) in hf.preds[bi].iter().enumerate() {
            let mut pairs: Vec<(VarId, VarId)> = Vec::new();
            for (v, dest, args) in &reg_phis {
                let d = resolve(*v, *dest, &mut vars);
                let s = resolve(*v, args[pi], &mut vars);
                if d != s {
                    pairs.push((d, s));
                }
            }
            if pairs.is_empty() {
                continue;
            }
            assert!(
                blocks[pred.index()].term.successors().len() == 1,
                "critical edge into block {bi} not split before lowering"
            );
            let copies = sequentialize(pairs, &mut vars);
            let pb = &mut blocks[pred.index()];
            pb.insts.extend(copies);
        }
    }

    let new_f = Function {
        name,
        params,
        ret_ty,
        vars,
        slots,
        blocks,
    };
    (new_f, fresh_count)
}

/// Emits a parallel copy group as a sequence of [`Inst::Copy`]s, breaking
/// cycles through a temporary.
fn sequentialize(mut pending: Vec<(VarId, VarId)>, vars: &mut Vec<VarDecl>) -> Vec<Inst> {
    let mut out = Vec::with_capacity(pending.len());
    while !pending.is_empty() {
        let mut progressed = false;
        let mut i = 0;
        while i < pending.len() {
            let (d, _s) = pending[i];
            let d_is_pending_src = pending.iter().any(|&(_, s2)| s2 == d);
            if !d_is_pending_src {
                let (d, s) = pending.swap_remove(i);
                out.push(Inst::Copy {
                    dst: d,
                    src: Operand::Var(s),
                });
                progressed = true;
            } else {
                i += 1;
            }
        }
        if !pending.is_empty() && !progressed {
            // pure cycle: save one destination's old value to a temp
            let (d, _) = pending[0];
            let ty = vars[d.index()].ty;
            let tmp = VarId::from_index(vars.len());
            vars.push(VarDecl {
                name: format!("swap.{}", vars.len()),
                ty,
            });
            out.push(Inst::Copy {
                dst: tmp,
                src: Operand::Var(d),
            });
            for (_, s) in pending.iter_mut() {
                if *s == d {
                    *s = tmp;
                }
            }
        }
    }
    out
}

/// Convenience used in tests: the declared type of a lowered variable.
pub fn lowered_var_ty(f: &Function, v: VarId) -> Ty {
    f.vars[v.index()].ty
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_hssa, SpecMode};
    use specframe_alias::AliasAnalysis;
    use specframe_ir::{parse_module, Value};
    use specframe_profile::run;

    fn round_trip(src: &str, entry: &str, args: &[Value]) {
        let m0 = parse_module(src).unwrap();
        let (expect, _) = run(&m0, entry, args, 1_000_000).unwrap();

        let mut m = m0.clone();
        for fi in 0..m.funcs.len() {
            specframe_analysis::split_critical_edges(&mut m.funcs[fi]);
        }
        let aa = AliasAnalysis::analyze(&m);
        for fi in 0..m.funcs.len() {
            let hf = build_hssa(
                &m,
                specframe_ir::FuncId::from_index(fi),
                &aa,
                SpecMode::NoSpeculation,
            );
            crate::build::verify_hssa(&hf).unwrap();
            lower_hssa(&mut m, &hf);
        }
        specframe_ir::verify_module(&m).unwrap();
        let (got, _) = run(&m, entry, args, 1_000_000).unwrap();
        assert_eq!(got, expect, "semantics changed by HSSA round trip");
    }

    #[test]
    fn straightline_round_trip() {
        round_trip(
            r#"
global g: i64[2] = [3, 4]

func f() -> i64 {
  var a: i64
  var b: i64
entry:
  a = load.i64 [@g]
  b = load.i64 [@g + 1]
  a = add a, b
  store.i64 [@g], a
  ret a
}
"#,
            "f",
            &[],
        );
    }

    #[test]
    fn loop_round_trip() {
        round_trip(
            r#"
global g: i64[1]

func f(n: i64) -> i64 {
  var i: i64
  var c: i64
  var v: i64
entry:
  i = 0
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
  v = load.i64 [@g]
  v = add v, i
  store.i64 [@g], v
  i = add i, 1
  jmp head
exit:
  v = load.i64 [@g]
  ret v
}
"#,
            "f",
            &[Value::I(17)],
        );
    }

    #[test]
    fn diamond_with_phi_round_trip() {
        round_trip(
            r#"
func f(x: i64) -> i64 {
  var r: i64
entry:
  br x, a, b
a:
  r = 10
  jmp m
b:
  r = 20
  jmp m
m:
  r = add r, 1
  ret r
}
"#,
            "f",
            &[Value::I(1)],
        );
    }

    #[test]
    fn calls_and_heap_round_trip() {
        round_trip(
            r#"
func fill(p: ptr, n: i64) {
  var i: i64
  var c: i64
  var q: ptr
entry:
  i = 0
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
  q = add p, i
  store.i64 [q], i
  i = add i, 1
  jmp head
exit:
  ret
}

func f(n: i64) -> i64 {
  var p: ptr
  var i: i64
  var c: i64
  var acc: i64
  var q: ptr
  var v: i64
entry:
  p = alloc n
  call fill(p, n)
  i = 0
  acc = 0
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
  q = add p, i
  v = load.i64 [q]
  acc = add acc, v
  i = add i, 1
  jmp head
exit:
  ret acc
}
"#,
            "f",
            &[Value::I(12)],
        );
    }

    #[test]
    fn sequentialize_handles_swap_cycle() {
        let mut vars = vec![
            VarDecl {
                name: "a".into(),
                ty: Ty::I64,
            },
            VarDecl {
                name: "b".into(),
                ty: Ty::I64,
            },
        ];
        // parallel copy {a <- b, b <- a}: needs a temp
        let copies = sequentialize(vec![(VarId(0), VarId(1)), (VarId(1), VarId(0))], &mut vars);
        assert_eq!(copies.len(), 3);
        assert_eq!(vars.len(), 3, "one swap temp introduced");
    }

    #[test]
    fn sequentialize_orders_chain() {
        let mut vars: Vec<VarDecl> = (0..3)
            .map(|i| VarDecl {
                name: format!("v{i}"),
                ty: Ty::I64,
            })
            .collect();
        // {v0 <- v1, v1 <- v2}: v0 must be written before v1 is clobbered
        let copies = sequentialize(vec![(VarId(0), VarId(1)), (VarId(1), VarId(2))], &mut vars);
        assert_eq!(copies.len(), 2);
        let Inst::Copy { dst, .. } = &copies[0] else {
            panic!()
        };
        assert_eq!(*dst, VarId(0));
        assert_eq!(vars.len(), 3, "no temp needed");
    }
}
