//! Versioned HSSA statements, φ nodes and χ/μ operators.

use crate::hvar::{HVarId, VarCatalog};
use specframe_ir::{
    AllocSiteId, BinOp, BlockId, CallSiteId, CheckKind, FuncId, GlobalId, InlineVec, LoadSpec,
    MemSiteId, SlotId, Ty, UnOp, VarId,
};

/// A placeholder memory site for statements synthesized during optimization;
/// `lower_hssa` replaces it with a fresh module-unique site.
pub const FRESH_SITE: MemSiteId = MemSiteId(u32::MAX);

/// A versioned register reference.
pub type RegVer = (VarId, u32);

/// A versioned operand.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum HOperand {
    /// Register `v` at SSA version `ver`.
    Reg(VarId, u32),
    /// Integer immediate.
    ConstI(i64),
    /// Float immediate.
    ConstF(f64),
    /// Address of a global.
    GlobalAddr(GlobalId),
    /// Address of a slot.
    SlotAddr(SlotId),
}

impl HOperand {
    /// The versioned register, if any.
    pub fn as_reg(self) -> Option<RegVer> {
        match self {
            HOperand::Reg(v, ver) => Some((v, ver)),
            _ => None,
        }
    }
}

/// A may-use operator `μ(var_ver)`.
///
/// `likely` is the paper's speculation flag: `μs` when the reference is
/// highly likely to actually read the variable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MuOp {
    /// The variable possibly referenced.
    pub var: HVarId,
    /// Version read.
    pub ver: u32,
    /// `true` = `μs` (flagged, likely).
    pub likely: bool,
}

/// A may-def operator `new_ver = χ(old_ver)`.
///
/// `likely` is the speculation flag: a flagged χ (`χs`) is an update that
/// cannot be ignored; an **unflagged χ is a speculative weak update** that
/// optimizations may skip at the price of a run-time check.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ChiOp {
    /// The variable possibly modified.
    pub var: HVarId,
    /// Version defined here.
    pub new_ver: u32,
    /// Version merged in (the value if the update does not happen).
    pub old_ver: u32,
    /// `true` = `χs` (flagged, likely).
    pub likely: bool,
}

/// Statement payloads; registers and direct-memory variables carry SSA
/// versions.
#[derive(Clone, PartialEq, Debug)]
pub enum HStmtKind {
    /// `dst = op a, b`
    Bin {
        dst: RegVer,
        op: BinOp,
        a: HOperand,
        b: HOperand,
    },
    /// `dst = op a`
    Un { dst: RegVer, op: UnOp, a: HOperand },
    /// `dst = src`
    Copy { dst: RegVer, src: HOperand },
    /// A load. For a *direct* load (`base` is a global/slot address) `dvar`
    /// names the real variable and the version being read; for an
    /// *indirect* load the μ list on the statement carries the vvar and the
    /// aliased real variables.
    Load {
        dst: RegVer,
        base: HOperand,
        offset: i64,
        ty: Ty,
        spec: LoadSpec,
        site: MemSiteId,
        dvar: Option<(HVarId, u32)>,
    },
    /// A store. For a *direct* store `dvar_def` is the strong def of the
    /// real variable; indirect stores define only through their χ list.
    Store {
        base: HOperand,
        offset: i64,
        val: HOperand,
        ty: Ty,
        site: MemSiteId,
        dvar_def: Option<(HVarId, u32)>,
    },
    /// A data/control speculation check (present when re-optimizing already
    /// speculative code; emitted by CodeMotion).
    CheckLoad {
        dst: RegVer,
        base: HOperand,
        offset: i64,
        ty: Ty,
        kind: CheckKind,
        site: MemSiteId,
        dvar: Option<(HVarId, u32)>,
    },
    /// A call; its χ/μ lists model the callee's mod/ref side effects.
    Call {
        dst: Option<RegVer>,
        callee: FuncId,
        args: Vec<HOperand>,
        site: CallSiteId,
    },
    /// Heap allocation.
    Alloc {
        dst: RegVer,
        words: HOperand,
        site: AllocSiteId,
    },
}

/// One HSSA statement: payload plus may-use/may-def operators.
#[derive(Clone, PartialEq, Debug)]
pub struct HStmt {
    /// The operation.
    pub kind: HStmtKind,
    /// May-uses (μ / μs).
    pub mu: InlineVec<MuOp, 2>,
    /// May-defs (χ / χs).
    pub chi: InlineVec<ChiOp, 2>,
}

impl HStmt {
    /// Wraps a payload with empty χ/μ lists.
    pub fn new(kind: HStmtKind) -> HStmt {
        HStmt {
            kind,
            mu: InlineVec::new(),
            chi: InlineVec::new(),
        }
    }

    /// The register defined, if any.
    pub fn def_reg(&self) -> Option<RegVer> {
        match &self.kind {
            HStmtKind::Bin { dst, .. }
            | HStmtKind::Un { dst, .. }
            | HStmtKind::Copy { dst, .. }
            | HStmtKind::Load { dst, .. }
            | HStmtKind::CheckLoad { dst, .. }
            | HStmtKind::Alloc { dst, .. } => Some(*dst),
            HStmtKind::Call { dst, .. } => *dst,
            HStmtKind::Store { .. } => None,
        }
    }

    /// Register operands read by the payload (not including μ operators).
    pub fn reg_uses(&self) -> Vec<RegVer> {
        let mut out = Vec::new();
        let mut push = |o: &HOperand| {
            if let HOperand::Reg(v, ver) = o {
                out.push((*v, *ver));
            }
        };
        match &self.kind {
            HStmtKind::Bin { a, b, .. } => {
                push(a);
                push(b);
            }
            HStmtKind::Un { a, .. } => push(a),
            HStmtKind::Copy { src, .. } => push(src),
            HStmtKind::Load { base, .. } | HStmtKind::CheckLoad { base, .. } => push(base),
            HStmtKind::Store { base, val, .. } => {
                push(base);
                push(val);
            }
            HStmtKind::Call { args, .. } => {
                for a in args {
                    push(a);
                }
            }
            HStmtKind::Alloc { words, .. } => push(words),
        }
        out
    }

    /// The χ over `var`, if present.
    pub fn chi_of(&self, var: HVarId) -> Option<&ChiOp> {
        self.chi.iter().find(|c| c.var == var)
    }

    /// Whether this statement's χ list contains an *unlikely* (weak) update
    /// of `var` — the paper's *speculative weak update*.
    pub fn is_weak_update_of(&self, var: HVarId) -> bool {
        self.chi_of(var).is_some_and(|c| !c.likely)
    }
}

/// A φ node for one HSSA variable.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Phi {
    /// Variable merged.
    pub var: HVarId,
    /// Version defined by the φ.
    pub dest: u32,
    /// One incoming version per predecessor, in `HssaFunc::preds` order.
    pub args: Vec<u32>,
}

/// Versioned block terminator.
#[derive(Clone, PartialEq, Debug)]
pub enum HTerm {
    /// `jmp target`
    Jump(BlockId),
    /// Conditional branch.
    Br {
        /// Condition (non-zero = taken).
        cond: HOperand,
        /// Taken target.
        then_: BlockId,
        /// Fall-through target.
        else_: BlockId,
    },
    /// Return.
    Ret(Option<HOperand>),
}

impl HTerm {
    /// Successors in order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            HTerm::Jump(t) => vec![*t],
            HTerm::Br { then_, else_, .. } => vec![*then_, *else_],
            HTerm::Ret(_) => vec![],
        }
    }
}

/// One HSSA block.
#[derive(Clone, Debug, Default)]
pub struct HBlock {
    /// φ nodes (at most one per variable).
    pub phis: Vec<Phi>,
    /// Statements in order.
    pub stmts: Vec<HStmt>,
    /// Terminator (versioned).
    pub term: Option<HTerm>,
}

/// A function in speculative SSA form.
///
/// Blocks correspond 1:1 (same [`BlockId`]s) to the base function the form
/// was built from; predecessors are frozen so φ argument order is stable.
#[derive(Clone, Debug)]
pub struct HssaFunc {
    /// The function this form was built from.
    pub func: FuncId,
    /// Variable catalog.
    pub catalog: VarCatalog,
    /// Blocks, indexed by [`BlockId`].
    pub blocks: Vec<HBlock>,
    /// Frozen predecessor lists (φ argument order).
    pub preds: Vec<Vec<BlockId>>,
    /// Next unissued version per variable (version 0 is the entry value).
    pub next_ver: Vec<u32>,
    /// Registers added during optimization: `(name, ty)`; their [`VarId`]s
    /// start at `first_new_var`.
    pub new_vars: Vec<(String, Ty)>,
    /// The first [`VarId`] not present in the base function.
    pub first_new_var: u32,
    /// Registers whose SSA versions all collapse onto one IR register at
    /// lowering. SSAPRE's expression temporaries live here: the collapse is
    /// what lets the ALAT key `ld.a`/`ld.c` pairs by one register name, and
    /// what makes a failed check's reloaded value visible to later reloads
    /// of the promoted expression.
    pub collapsed_vars: Vec<VarId>,
}

impl HssaFunc {
    /// Issues a fresh SSA version for `var`.
    pub fn fresh_ver(&mut self, var: HVarId) -> u32 {
        let v = &mut self.next_ver[var.index()];
        *v += 1;
        *v - 1
    }

    /// Issues a fresh SSA version for a register.
    pub fn fresh_ver_of_reg(&mut self, v: VarId) -> u32 {
        let hv = self
            .catalog
            .get(crate::hvar::HVarKind::Reg(v))
            .expect("register interned");
        self.fresh_ver(hv)
    }

    /// Adds a brand-new register (an optimizer temporary) of type `ty`,
    /// registering it in the catalog, and returns its [`VarId`].
    pub fn add_temp(&mut self, name: impl Into<String>, ty: Ty) -> VarId {
        let id = VarId(self.first_new_var + self.new_vars.len() as u32);
        self.new_vars.push((name.into(), ty));
        let hv = self.catalog.intern(crate::hvar::HVarKind::Reg(id));
        // keep next_ver in sync with the catalog
        if self.next_ver.len() < self.catalog.len() {
            self.next_ver.resize(self.catalog.len(), 1);
        }
        let _ = hv;
        id
    }

    /// Block ids in layout order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// The index of `pred` within `block`'s predecessor list (φ argument
    /// position).
    pub fn pred_index(&self, block: BlockId, pred: BlockId) -> Option<usize> {
        self.preds[block.index()].iter().position(|&p| p == pred)
    }

    /// Total statement count (for size diagnostics).
    pub fn stmt_count(&self) -> usize {
        self.blocks.iter().map(|b| b.stmts.len()).sum()
    }
}
