//! The likeliness oracle: the single seam for every χ/μ *likely* verdict.
//!
//! §3.2 of the paper derives likeliness from one of two sources — an alias
//! profile (§3.2.1) or three syntax-tree heuristic rules (§3.2.2) — and
//! every consumer (HSSA construction, the SSAPRE kernel's weak-update
//! queries, check-load emission) must agree on the verdicts or the ALAT
//! recovery protocol breaks. Historically each consumer re-derived the
//! decision from a `SpecMode` match; [`Likeliness`] centralizes them:
//!
//! * [`Likeliness::verdict`] answers the *construction-time* question "is
//!   this χ/μ at this site likely?", with evidence ([`Why`]) suitable for
//!   `specc --explain-spec`.
//! * [`Likeliness::chi_kills`] answers the *kernel-time* question "does
//!   this flagged-or-weak χ kill the candidate's occurrence chain?", the
//!   per-expression refinement that knows the candidate's own syntax and
//!   profiled LOC set.
//!
//! Codegen never queries the oracle directly: the kernel materializes its
//! answers as `LoadSpec` flags (`ld.a`/`ld.s`/`ld.c`) which lowering and
//! the machine encoder consume unchanged.
//!
//! Sources map to the paper as: `none` — classic HSSA, every may-alias
//! honoured (the O3 baseline); `profile` — §3.2.1 rules over a collected
//! alias profile; `heuristic` — §3.2.2 rules 1–3 applied per site from a
//! one-pass syntax scan ([`FnEvidence`]); `aggressive` — the §5.3
//! upper-bound estimator that flags nothing but real defs.

use crate::build::SpecMode;
use specframe_alias::Loc;
use specframe_ir::FxHashSet;
use specframe_ir::{CallSiteId, Function, Inst, MemSiteId, Operand, Ty, VarId};
use specframe_profile::AliasProfile;

/// Target-derived cycle figures the oracle weighs speculation against:
/// speculating a load only pays when the load's latency exceeds what the
/// target charges for the check that guards it. The driver owns the real
/// cost tables (in the machine crate, which this crate must not depend
/// on) and projects them down to this plain-data view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpecCosts {
    /// Straight-line cycle overhead of one speculative check on the hit
    /// path (0 on an ALAT machine whose `ld.c` is free, positive on a
    /// software target that compares addresses and epochs inline).
    pub check_cost: u64,
    /// Integer load latency in cycles.
    pub int_load: u64,
    /// Floating-point load latency in cycles.
    pub fp_load: u64,
}

impl Default for SpecCosts {
    /// The paper's EPIC figures: free checks, 2-cycle integer loads,
    /// 9-cycle FP loads — under which every load type is profitable, so
    /// the default oracle behaves exactly as the pre-cost-model one did.
    fn default() -> SpecCosts {
        SpecCosts {
            check_cost: 0,
            int_load: 2,
            fp_load: 9,
        }
    }
}

impl SpecCosts {
    /// The load latency the candidate's type pays.
    pub fn load(&self, ty: Ty) -> u64 {
        match ty {
            Ty::F64 => self.fp_load,
            Ty::I64 | Ty::Ptr => self.int_load,
        }
    }

    /// Whether hoisting a load of this type past its check pays: the
    /// latency saved must strictly exceed the per-check overhead.
    pub fn profitable(&self, ty: Ty) -> bool {
        self.load(ty) > self.check_cost
    }
}

/// Per-function syntax evidence for the heuristic rules, collected by
/// [`Likeliness::scan`] in one pass before HSSA statements are built.
#[derive(Debug, Default)]
pub struct FnEvidence {
    /// Syntax `(base reg, word offset)` of every indirect load in the
    /// function (rule 1's "identical syntax trees" universe).
    load_syntax: FxHashSet<(VarId, i64)>,
}

impl FnEvidence {
    /// Whether an indirect load with exactly this syntax exists.
    pub fn has_load_syntax(&self, syntax: (VarId, i64)) -> bool {
        self.load_syntax.contains(&syntax)
    }
}

/// One likeliness question about a χ or μ being attached at a site. Memory
/// sites (loads/stores) and call sites are distinct id spaces, so each
/// variant carries its own.
#[derive(Clone, Copy, Debug)]
pub enum SiteQuery<'q> {
    /// χ over an aliased direct-memory cell at an indirect store.
    StoreChiMem {
        /// The store's memory site.
        site: MemSiteId,
        /// The cell's location.
        loc: Loc,
    },
    /// χ over the access-class virtual variable at a store. `syntax` is
    /// `(base reg, offset)` for indirect stores, `None` for direct stores
    /// (whose address tree — a global/slot — never matches a load's
    /// register-based tree).
    StoreChiVirt {
        /// The store's memory site.
        site: MemSiteId,
        /// Store address syntax, when indirect.
        syntax: Option<(VarId, i64)>,
    },
    /// μ over an aliased direct-memory cell at an indirect load.
    LoadMuMem {
        /// The load's memory site.
        site: MemSiteId,
        /// The cell's location.
        loc: Loc,
    },
    /// μ over the access-class virtual variable at an indirect load.
    LoadMuVirt {
        /// The load's memory site.
        site: MemSiteId,
    },
    /// χ over a direct-memory cell in a call's mod set.
    CallChiMem {
        /// The call site.
        site: CallSiteId,
        /// The cell's location.
        loc: Loc,
    },
    /// μ over a direct-memory cell in a call's ref set.
    CallMuMem {
        /// The call site.
        site: CallSiteId,
        /// The cell's location.
        loc: Loc,
    },
    /// χ over a virtual variable in a call's mod set.
    CallChiVirt {
        /// The call site.
        site: CallSiteId,
        /// Locations of the class the virtual variable stands for.
        class_locs: &'q [Loc],
    },
    /// μ over a virtual variable in a call's ref set (the paper keeps the
    /// μ list of a call unchanged in every mode).
    CallMuVirt,
}

/// Evidence behind a [`Verdict`], printable for `--explain-spec`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Why {
    /// No-speculation source: every may-alias is honoured.
    NoSpec,
    /// Aggressive source: every may-alias is ignored.
    Aggressive,
    /// Heuristic rule 1: a reference with identical syntax exists.
    Rule1SameSyntax,
    /// Heuristic rule 2: no same-syntax reference — unlikely.
    Rule2DiffSyntax,
    /// Heuristic rule 3: call side effects are all assumed highly likely.
    Rule3CallEffects,
    /// A call's μ list is kept unchanged regardless of source.
    CallMuKept,
    /// Profile observed (or did not observe) the site touching the loc.
    ProfileTouched(bool),
    /// Profile observed (or did not observe) the site executing.
    ProfileExecuted(bool),
    /// Profile observed (or did not observe) the call modifying the loc.
    ProfileCallMod(bool),
    /// Profile observed (or did not observe) the call reading the loc.
    ProfileCallRef(bool),
}

impl Why {
    /// Short human-readable evidence string.
    pub fn describe(&self) -> &'static str {
        match self {
            Why::NoSpec => "no-spec source honours every may-alias",
            Why::Aggressive => "aggressive source ignores every may-alias",
            Why::Rule1SameSyntax => "rule 1: same-syntax reference in function",
            Why::Rule2DiffSyntax => "rule 2: no same-syntax reference",
            Why::Rule3CallEffects => "rule 3: call side effects assumed likely",
            Why::CallMuKept => "call mu list kept unchanged",
            Why::ProfileTouched(true) => "profile: site touched the loc",
            Why::ProfileTouched(false) => "profile: site never touched the loc",
            Why::ProfileExecuted(true) => "profile: site executed",
            Why::ProfileExecuted(false) => "profile: site never executed",
            Why::ProfileCallMod(true) => "profile: call modified the loc",
            Why::ProfileCallMod(false) => "profile: call never modified the loc",
            Why::ProfileCallRef(true) => "profile: call read the loc",
            Why::ProfileCallRef(false) => "profile: call never read the loc",
        }
    }
}

/// An oracle answer: the flag value plus its evidence.
#[derive(Clone, Copy, Debug)]
pub struct Verdict {
    /// The χ/μ `likely` flag to materialize.
    pub likely: bool,
    /// Why.
    pub why: Why,
}

impl Verdict {
    fn new(likely: bool, why: Why) -> Verdict {
        Verdict { likely, why }
    }
}

/// Statement shape of a killing candidate for [`Likeliness::chi_kills`].
#[derive(Clone, Copy, Debug)]
pub enum RefineStmt {
    /// A store; `syntax` is `(base reg, offset)` when indirect.
    Store {
        /// The store's memory site.
        site: MemSiteId,
        /// Address syntax, when indirect.
        syntax: Option<(VarId, i64)>,
    },
    /// A call.
    Call {
        /// The call site.
        site: CallSiteId,
    },
    /// Anything else carrying a χ.
    Other,
}

/// Kernel-side χ-kill question: everything the per-expression refinement
/// needs, as plain data (so the oracle stays IR-shape agnostic).
#[derive(Clone, Copy, Debug)]
pub struct ChiRefine<'c> {
    /// The construction-time flag on the χ.
    pub chi_likely: bool,
    /// The killing statement's shape.
    pub stmt: RefineStmt,
    /// The candidate is a direct named-memory load (per-loc flags exact).
    pub cand_direct: bool,
    /// The candidate's own load syntax, when an indirect load.
    pub cand_syntax: Option<(VarId, i64)>,
    /// The candidate's loaded type, when the candidate is a load (feeds
    /// the [`SpecCosts`] profitability gate); `None` disables the gate.
    pub cand_ty: Option<Ty>,
    /// Profiled LOC union over the candidate's occurrence sites.
    pub expr_locs: &'c FxHashSet<Loc>,
}

/// The oracle. Owned by the driver; one per compilation, queried by HSSA
/// construction (per-site verdicts) and the SSAPRE kernel (per-expression
/// χ-kill refinement).
#[derive(Clone, Copy, Debug)]
pub struct Likeliness<'a> {
    mode: SpecMode<'a>,
    costs: SpecCosts,
}

impl<'a> Likeliness<'a> {
    /// Oracle over one likeliness source, with the default (EPIC) costs.
    pub fn new(mode: SpecMode<'a>) -> Likeliness<'a> {
        Likeliness::with_costs(mode, SpecCosts::default())
    }

    /// Oracle over one likeliness source weighing the given target costs.
    pub fn with_costs(mode: SpecMode<'a>, costs: SpecCosts) -> Likeliness<'a> {
        Likeliness { mode, costs }
    }

    /// The underlying source.
    pub fn mode(&self) -> SpecMode<'a> {
        self.mode
    }

    /// The target cost view this oracle weighs speculation against.
    pub fn costs(&self) -> SpecCosts {
        self.costs
    }

    /// The alias profile, when the source is `profile`.
    pub fn profile(&self) -> Option<&'a AliasProfile> {
        match self.mode {
            SpecMode::Profile(p) => Some(p),
            _ => None,
        }
    }

    /// Whether this source permits data speculation at all.
    pub fn speculative(&self) -> bool {
        self.mode.speculative()
    }

    /// Whether this is the heuristic source (§3.2.2).
    pub fn heuristic(&self) -> bool {
        matches!(self.mode, SpecMode::Heuristic)
    }

    /// The source name as spelled on the `specc --spec` flag.
    pub fn source_name(&self) -> &'static str {
        match self.mode {
            SpecMode::NoSpeculation => "none",
            SpecMode::Profile(_) => "profile",
            SpecMode::Heuristic => "heuristic",
            SpecMode::Aggressive => "aggressive",
        }
    }

    /// One-pass syntax prescan feeding the heuristic rules. Cheap (and
    /// empty) for the other sources.
    pub fn scan(&self, f: &Function) -> FnEvidence {
        let mut ev = FnEvidence::default();
        if !self.heuristic() {
            return ev;
        }
        for b in &f.blocks {
            for inst in &b.insts {
                if let Inst::Load {
                    base: Operand::Var(v),
                    offset,
                    ..
                }
                | Inst::CheckLoad {
                    base: Operand::Var(v),
                    offset,
                    ..
                } = inst
                {
                    ev.load_syntax.insert((*v, *offset));
                }
            }
        }
        ev
    }

    /// The construction-time verdict for one χ/μ at one site. This is the
    /// single call site replacing the per-kind `SpecMode` closures that
    /// used to live in `build_hssa`.
    pub fn verdict(&self, ev: &FnEvidence, q: SiteQuery<'_>) -> Verdict {
        // the call μ list is kept unchanged in every source (§3.2.2 rule 3
        // wording; profile mode refines per-loc below for real cells)
        if matches!(q, SiteQuery::CallMuVirt) {
            return Verdict::new(true, Why::CallMuKept);
        }
        match self.mode {
            SpecMode::NoSpeculation => Verdict::new(true, Why::NoSpec),
            SpecMode::Aggressive => Verdict::new(false, Why::Aggressive),
            SpecMode::Heuristic => match q {
                // rule 1 / rule 2: a store's virtual-variable χ is likely
                // exactly when some load in the function uses the same
                // address syntax (a direct store's global/slot tree never
                // matches an indirect load's register tree)
                SiteQuery::StoreChiVirt { syntax, .. } => match syntax {
                    Some(s) if ev.has_load_syntax(s) => Verdict::new(true, Why::Rule1SameSyntax),
                    _ => Verdict::new(false, Why::Rule2DiffSyntax),
                },
                // an indirect reference trivially has its own syntax: the
                // load's μ over its class vvar is always likely (rule 1)
                SiteQuery::LoadMuVirt { .. } => Verdict::new(true, Why::Rule1SameSyntax),
                // a named cell and a pointer dereference have different
                // syntax trees (rule 2)
                SiteQuery::StoreChiMem { .. } | SiteQuery::LoadMuMem { .. } => {
                    Verdict::new(false, Why::Rule2DiffSyntax)
                }
                // rule 3: compiler-analyzed call side effects are all
                // assumed highly likely
                SiteQuery::CallChiMem { .. }
                | SiteQuery::CallMuMem { .. }
                | SiteQuery::CallChiVirt { .. } => Verdict::new(true, Why::Rule3CallEffects),
                SiteQuery::CallMuVirt => unreachable!("handled above"),
            },
            SpecMode::Profile(p) => match q {
                SiteQuery::StoreChiMem { site, loc } | SiteQuery::LoadMuMem { site, loc } => {
                    let t = p.touched(site, loc);
                    Verdict::new(t, Why::ProfileTouched(t))
                }
                SiteQuery::StoreChiVirt { site, .. } | SiteQuery::LoadMuVirt { site } => {
                    let e = p.site_executed(site);
                    Verdict::new(e, Why::ProfileExecuted(e))
                }
                SiteQuery::CallChiMem { site, loc } => {
                    let m = p.call_mod.get(&site).is_some_and(|s| s.contains(&loc));
                    Verdict::new(m, Why::ProfileCallMod(m))
                }
                SiteQuery::CallMuMem { site, loc } => {
                    let r = p.call_ref.get(&site).is_some_and(|s| s.contains(&loc));
                    Verdict::new(r, Why::ProfileCallRef(r))
                }
                SiteQuery::CallChiVirt { site, class_locs } => {
                    let set = p.call_mod.get(&site);
                    let m = class_locs
                        .iter()
                        .any(|l| set.is_some_and(|s| s.contains(l)));
                    Verdict::new(m, Why::ProfileCallMod(m))
                }
                SiteQuery::CallMuVirt => unreachable!("handled above"),
            },
        }
    }

    /// Kernel-side per-expression refinement: does a χ over the candidate's
    /// tracked memory variable kill its occurrence chain? Only meaningful
    /// when [`Likeliness::speculative`] — a non-speculative pipeline
    /// honours every χ without asking.
    ///
    /// * profile — a likely χ over a *virtual* variable only kills when the
    ///   killing site's observed LOCs overlap the candidate's observed LOCs
    ///   (per-loc flags on real cells are already exact);
    /// * heuristic — for stores, the per-candidate same-syntax comparison
    ///   (rule 1 against *this* candidate's tree, not any load's) is
    ///   authoritative; calls keep their rule-3 flag;
    /// * aggressive — χs never kill.
    pub fn chi_kills(&self, cx: &ChiRefine<'_>) -> bool {
        // the profitability gate runs before any likeliness source: when
        // the target's per-check overhead eats the candidate's load
        // latency, speculating cannot pay no matter how unlikely the χ —
        // honour it (kill) and keep the load where it is
        if self.mode.speculative() {
            if let Some(ty) = cx.cand_ty {
                if !self.costs.profitable(ty) {
                    return true;
                }
            }
        }
        match self.mode {
            SpecMode::NoSpeculation => true,
            SpecMode::Aggressive => cx.chi_likely,
            SpecMode::Heuristic => match cx.stmt {
                RefineStmt::Store { syntax, .. } => {
                    matches!((syntax, cx.cand_syntax), (Some(s), Some(c)) if s == c)
                }
                _ => cx.chi_likely,
            },
            SpecMode::Profile(p) => {
                if !cx.chi_likely {
                    return false;
                }
                if cx.cand_direct {
                    return true; // per-loc flags are already exact
                }
                match cx.stmt {
                    RefineStmt::Store { site, .. } => match p.locs(site) {
                        Some(locs) => locs.iter().any(|l| cx.expr_locs.contains(l)),
                        None => true,
                    },
                    RefineStmt::Call { site } => match p.call_mod.get(&site) {
                        Some(locs) => locs.iter().any(|l| cx.expr_locs.contains(l)),
                        None => true,
                    },
                    RefineStmt::Other => true,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specframe_ir::parse_module;

    fn evidence_of(src: &str, func: &str) -> FnEvidence {
        let m = parse_module(src).unwrap();
        let f = m.func(m.func_by_name(func).unwrap());
        Likeliness::new(SpecMode::Heuristic).scan(f)
    }

    #[test]
    fn scan_collects_indirect_load_syntax_only() {
        let ev = evidence_of(
            r#"
global g: i64[1]

func f(p: ptr) -> i64 {
  var x: i64
  var y: i64
entry:
  x = load.i64 [p + 3]
  y = load.i64 [@g]
  x = add x, y
  ret x
}
"#,
            "f",
        );
        assert!(ev.has_load_syntax((specframe_ir::VarId(0), 3)));
        assert!(!ev.has_load_syntax((specframe_ir::VarId(0), 0)));
    }

    #[test]
    fn heuristic_store_chi_follows_rules_1_and_2() {
        let ev = evidence_of(
            r#"
func f(p: ptr, q: ptr) -> i64 {
  var x: i64
entry:
  x = load.i64 [p + 1]
  store.i64 [p + 1], x
  store.i64 [q + 2], x
  ret x
}
"#,
            "f",
        );
        let o = Likeliness::new(SpecMode::Heuristic);
        let site = MemSiteId(0);
        let same = o.verdict(
            &ev,
            SiteQuery::StoreChiVirt {
                site,
                syntax: Some((specframe_ir::VarId(0), 1)),
            },
        );
        assert!(same.likely);
        assert_eq!(same.why, Why::Rule1SameSyntax);
        let diff = o.verdict(
            &ev,
            SiteQuery::StoreChiVirt {
                site,
                syntax: Some((specframe_ir::VarId(1), 2)),
            },
        );
        assert!(!diff.likely);
        assert_eq!(diff.why, Why::Rule2DiffSyntax);
        let direct = o.verdict(&ev, SiteQuery::StoreChiVirt { site, syntax: None });
        assert!(!direct.likely, "direct store syntax never matches a load");
    }

    #[test]
    fn sources_disagree_only_where_the_paper_says() {
        let ev = FnEvidence::default();
        let msite = MemSiteId(7);
        let csite = CallSiteId(3);
        let none = Likeliness::new(SpecMode::NoSpeculation);
        let aggr = Likeliness::new(SpecMode::Aggressive);
        let heur = Likeliness::new(SpecMode::Heuristic);
        // call μ over a vvar is kept likely in every source
        for o in [&none, &aggr, &heur] {
            assert!(o.verdict(&ev, SiteQuery::CallMuVirt).likely);
        }
        // rule 3 keeps call χs likely under heuristic, aggressive drops them
        assert!(
            heur.verdict(
                &ev,
                SiteQuery::CallChiMem {
                    site: csite,
                    loc: Loc::Global(specframe_ir::GlobalId(0)),
                },
            )
            .likely
        );
        assert!(
            !aggr
                .verdict(
                    &ev,
                    SiteQuery::CallChiMem {
                        site: csite,
                        loc: Loc::Global(specframe_ir::GlobalId(0)),
                    },
                )
                .likely
        );
        assert!(
            none.verdict(&ev, SiteQuery::LoadMuVirt { site: msite })
                .likely
        );
    }

    #[test]
    fn heuristic_chi_kill_is_per_candidate_syntax() {
        let o = Likeliness::new(SpecMode::Heuristic);
        let locs = FxHashSet::default();
        let store = RefineStmt::Store {
            site: MemSiteId(0),
            syntax: Some((specframe_ir::VarId(0), 0)),
        };
        // same syntax kills even when the build-time flag says likely
        assert!(o.chi_kills(&ChiRefine {
            chi_likely: true,
            stmt: store,
            cand_direct: false,
            cand_syntax: Some((specframe_ir::VarId(0), 0)),
            cand_ty: None,
            expr_locs: &locs,
        }));
        // different syntax does NOT kill even when the build-time flag is
        // likely (the flag answered rule 1 for *some* load, not this one)
        assert!(!o.chi_kills(&ChiRefine {
            chi_likely: true,
            stmt: store,
            cand_direct: false,
            cand_syntax: Some((specframe_ir::VarId(5), 0)),
            cand_ty: None,
            expr_locs: &locs,
        }));
    }

    #[test]
    fn unprofitable_loads_are_killed_regardless_of_source() {
        // a software target charging 5 cycles per check: int loads (2c)
        // stop paying, fp loads (9c) still do
        let swr = SpecCosts {
            check_cost: 5,
            ..SpecCosts::default()
        };
        assert!(!swr.profitable(Ty::I64));
        assert!(!swr.profitable(Ty::Ptr));
        assert!(swr.profitable(Ty::F64));
        let locs = FxHashSet::default();
        let cx = |ty| ChiRefine {
            chi_likely: false,
            stmt: RefineStmt::Other,
            cand_direct: false,
            cand_syntax: None,
            cand_ty: Some(ty),
            expr_locs: &locs,
        };
        // even the aggressive source (χs never kill) honours the gate
        for mode in [SpecMode::Aggressive, SpecMode::Heuristic] {
            let o = Likeliness::with_costs(mode, swr);
            assert!(o.chi_kills(&cx(Ty::I64)), "{mode:?} must kill int loads");
            assert!(!o.chi_kills(&cx(Ty::F64)), "{mode:?} must keep fp loads");
        }
        // default (EPIC) costs leave every verdict untouched
        let aggr = Likeliness::new(SpecMode::Aggressive);
        assert!(!aggr.chi_kills(&cx(Ty::I64)));
        assert!(!aggr.chi_kills(&cx(Ty::F64)));
    }
}
