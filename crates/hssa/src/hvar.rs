//! The HSSA variable space.

use specframe_alias::ClassId;
use specframe_ir::FxHashMap;
use specframe_ir::{GlobalId, SlotId, VarId};

/// Index of an HSSA variable within one function's [`VarCatalog`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HVarId(pub u32);

impl HVarId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl core::fmt::Debug for HVarId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "hv{}", self.0)
    }
}

/// The base object of a direct-memory variable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum MemBase {
    /// A module global.
    Global(GlobalId),
    /// A slot of the current function.
    Slot(SlotId),
}

/// A direct-memory "real variable": one statically named cell
/// (`base + off`). This is what the paper calls a real program variable
/// `a` that may be aliased by `*p`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MemVar {
    /// The named object.
    pub base: MemBase,
    /// Constant word offset within it.
    pub off: i64,
}

/// What an HSSA variable denotes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum HVarKind {
    /// An IR register (never aliased).
    Reg(VarId),
    /// A direct-memory real variable (aliased by indirect references of its
    /// alias class).
    Mem(MemVar),
    /// The *virtual variable* of one alias class — the paper's rule: "all
    /// indirect memory references that have similar alias behaviors in the
    /// program are assigned a unique virtual variable".
    Virt(ClassId),
}

/// Per-function catalog mapping [`HVarKind`]s to dense [`HVarId`]s.
#[derive(Debug, Default, Clone)]
pub struct VarCatalog {
    kinds: Vec<HVarKind>,
    index: FxHashMap<HVarKind, HVarId>,
}

impl VarCatalog {
    /// An empty catalog.
    pub fn new() -> VarCatalog {
        VarCatalog::default()
    }

    /// Interns a kind, returning its stable id.
    pub fn intern(&mut self, kind: HVarKind) -> HVarId {
        if let Some(&id) = self.index.get(&kind) {
            return id;
        }
        let id = HVarId(self.kinds.len() as u32);
        self.kinds.push(kind);
        self.index.insert(kind, id);
        id
    }

    /// Looks a kind up without interning.
    pub fn get(&self, kind: HVarKind) -> Option<HVarId> {
        self.index.get(&kind).copied()
    }

    /// The kind of an id.
    #[inline]
    pub fn kind(&self, id: HVarId) -> HVarKind {
        self.kinds[id.index()]
    }

    /// Number of interned variables.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Iterates over `(id, kind)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (HVarId, HVarKind)> + '_ {
        self.kinds
            .iter()
            .enumerate()
            .map(|(i, &k)| (HVarId(i as u32), k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut c = VarCatalog::new();
        let a = c.intern(HVarKind::Reg(VarId(0)));
        let b = c.intern(HVarKind::Reg(VarId(0)));
        assert_eq!(a, b);
        assert_eq!(c.len(), 1);
        let d = c.intern(HVarKind::Reg(VarId(1)));
        assert_ne!(a, d);
    }

    #[test]
    fn kinds_round_trip() {
        let mut c = VarCatalog::new();
        let mv = MemVar {
            base: MemBase::Global(GlobalId(2)),
            off: 3,
        };
        let id = c.intern(HVarKind::Mem(mv));
        assert_eq!(c.kind(id), HVarKind::Mem(mv));
        assert_eq!(c.get(HVarKind::Mem(mv)), Some(id));
        assert_eq!(c.get(HVarKind::Virt(ClassId(9))), None);
    }

    #[test]
    fn distinct_offsets_distinct_vars() {
        let mut c = VarCatalog::new();
        let a = c.intern(HVarKind::Mem(MemVar {
            base: MemBase::Global(GlobalId(0)),
            off: 0,
        }));
        let b = c.intern(HVarKind::Mem(MemVar {
            base: MemBase::Global(GlobalId(0)),
            off: 1,
        }));
        assert_ne!(a, b);
    }
}
