//! Speculative SSA construction (the pipeline of the paper's Figure 4).
//!
//! 1. equivalence-class alias analysis (done in `specframe-alias`);
//! 2. create χ and μ lists for indirect references and calls;
//! 3. set speculation flags from the alias profile (§3.2.1) or heuristic
//!    rules (§3.2.2);
//! 4. insert φs and rename — standard SSA over registers, real
//!    direct-memory variables, and virtual variables.

use crate::hvar::{HVarId, HVarKind, MemBase, MemVar, VarCatalog};
use crate::oracle::{FnEvidence, Likeliness, SiteQuery};
use crate::stmt::{ChiOp, HBlock, HOperand, HStmt, HStmtKind, HTerm, HssaFunc, MuOp, Phi};
use specframe_alias::{AliasAnalysis, ClassId, Loc};
use specframe_analysis::{iterated_df, DomTree, FuncAnalyses};
use specframe_ir::{
    BlockId, FuncId, FuncSlot, Function, Global, Inst, Module, Operand, Terminator, Ty, VarId,
};
use specframe_ir::{FxHashMap, FxHashSet};
use specframe_profile::AliasProfile;

/// Where speculation likeliness comes from.
///
/// * `NoSpeculation` flags every χ/μ *likely*: classic HSSA, the paper's O3
///   baseline — every may-alias is honoured.
/// * `Profile` applies the §3.2.1 rules against a collected alias profile.
/// * `Heuristic` applies the §3.2.2 syntax-tree rules (refined per
///   expression inside SSAPRE, which knows the candidate's syntax).
/// * `Aggressive` flags *nothing* except real defs — the "aggressive
///   register promotion" upper-bound estimator of §5.3 / Figure 12.
#[derive(Clone, Copy, Debug)]
pub enum SpecMode<'a> {
    /// Classic HSSA; no data speculation.
    NoSpeculation,
    /// Flags from an alias profile.
    Profile(&'a AliasProfile),
    /// Flags from the three heuristic rules.
    Heuristic,
    /// Ignore every may-alias (potential-estimation mode).
    Aggressive,
}

impl SpecMode<'_> {
    /// Whether this mode permits data speculation at all.
    pub fn speculative(&self) -> bool {
        !matches!(self, SpecMode::NoSpeculation)
    }
}

/// Builds the speculative SSA form of one function, computing the CFG
/// analyses it needs on the spot.
///
/// The CFG should have critical edges pre-split (see
/// `specframe_analysis::split_critical_edges`) if the form will be
/// optimized and lowered; construction itself does not require it.
pub fn build_hssa(m: &Module, fid: FuncId, aa: &AliasAnalysis, mode: SpecMode<'_>) -> HssaFunc {
    let f = m.func(fid);
    let fa = FuncAnalyses::compute(f);
    build_hssa_in(&m.globals, f, fid, aa, mode, &fa)
}

/// [`build_hssa`] over a pre-computed analysis cache, without touching the
/// rest of the module. Convenience wrapper constructing a one-shot
/// [`Likeliness`] oracle from `mode`; the driver owns a long-lived oracle
/// and calls [`build_hssa_with`] directly.
pub fn build_hssa_in(
    globals: &[Global],
    f: &Function,
    fid: FuncId,
    aa: &AliasAnalysis,
    mode: SpecMode<'_>,
    fa: &FuncAnalyses,
) -> HssaFunc {
    build_hssa_with(globals, f, fid, aa, &Likeliness::new(mode), fa)
}

/// [`build_hssa`] against an externally owned [`Likeliness`] oracle. Every
/// χ/μ `likely` flag is one [`Likeliness::verdict`] call; the parallel
/// driver calls this with each worker owning exactly one function —
/// `globals` and the oracle are the only shared state, both read-only.
pub fn build_hssa_with(
    globals: &[Global],
    f: &Function,
    fid: FuncId,
    aa: &AliasAnalysis,
    oracle: &Likeliness<'_>,
    fa: &FuncAnalyses,
) -> HssaFunc {
    let mut catalog = VarCatalog::new();
    for (i, _) in f.vars.iter().enumerate() {
        catalog.intern(HVarKind::Reg(VarId::from_index(i)));
    }

    // ---- pass A: intern direct-memory variables and virtual variables ----
    for b in &f.blocks {
        for inst in &b.insts {
            match inst {
                Inst::Load { base, offset, .. }
                | Inst::CheckLoad { base, offset, .. }
                | Inst::Store { base, offset, .. } => match base {
                    Operand::GlobalAddr(g) => {
                        catalog.intern(HVarKind::Mem(MemVar {
                            base: MemBase::Global(*g),
                            off: *offset,
                        }));
                    }
                    Operand::SlotAddr(s) => {
                        catalog.intern(HVarKind::Mem(MemVar {
                            base: MemBase::Slot(*s),
                            off: *offset,
                        }));
                    }
                    Operand::Var(_) => {
                        let c = aa.access_class(fid, *base).unwrap_or(ClassId(u32::MAX));
                        catalog.intern(HVarKind::Virt(c));
                    }
                    _ => {}
                },
                _ => {}
            }
        }
    }

    // Loc of a Mem var (for class/profile lookups)
    let mem_loc = |mv: MemVar| -> Loc {
        match mv.base {
            MemBase::Global(g) => Loc::Global(g),
            MemBase::Slot(s) => Loc::Slot(FuncSlot { func: fid, slot: s }),
        }
    };

    // snapshot: all Mem vars and Virt vars with their classes
    let mem_vars: Vec<(HVarId, MemVar, ClassId)> = catalog
        .iter()
        .filter_map(|(id, k)| match k {
            HVarKind::Mem(mv) => Some((id, mv, aa.loc_class(mem_loc(mv)))),
            _ => None,
        })
        .collect();
    let virt_vars: Vec<(HVarId, ClassId)> = catalog
        .iter()
        .filter_map(|(id, k)| match k {
            HVarKind::Virt(c) => Some((id, c)),
            _ => None,
        })
        .collect();

    let mem_ty = |mv: MemVar| -> Ty {
        match mv.base {
            MemBase::Global(g) => globals[g.index()].ty,
            MemBase::Slot(s) => f.slots[s.index()].ty,
        }
    };

    // ---- pass B: build statements with unversioned mu/chi lists ----
    // (versions are filled by renaming; we use u32::MAX as a placeholder)
    const UNV: u32 = u32::MAX;

    // one syntax prescan feeds the heuristic rules; every likeliness flag
    // below is a single oracle verdict
    let ev: FnEvidence = oracle.scan(f);
    let likely = |q: SiteQuery<'_>| -> bool { oracle.verdict(&ev, q).likely };

    let mut blocks: Vec<HBlock> = Vec::with_capacity(f.blocks.len());
    for b in &f.blocks {
        let mut hb = HBlock::default();
        for inst in &b.insts {
            let stmt = match inst {
                Inst::Bin { dst, op, a, b } => HStmt::new(HStmtKind::Bin {
                    dst: (*dst, UNV),
                    op: *op,
                    a: unversioned(*a),
                    b: unversioned(*b),
                }),
                Inst::Un { dst, op, a } => HStmt::new(HStmtKind::Un {
                    dst: (*dst, UNV),
                    op: *op,
                    a: unversioned(*a),
                }),
                Inst::Copy { dst, src } => HStmt::new(HStmtKind::Copy {
                    dst: (*dst, UNV),
                    src: unversioned(*src),
                }),
                Inst::Load {
                    dst,
                    base,
                    offset,
                    ty,
                    spec,
                    site,
                } => {
                    let mut stmt = HStmt::new(HStmtKind::Load {
                        dst: (*dst, UNV),
                        base: unversioned(*base),
                        offset: *offset,
                        ty: *ty,
                        spec: *spec,
                        site: *site,
                        dvar: None,
                    });
                    attach_load_lists(
                        &mut stmt, globals, f, fid, aa, &catalog, &mem_vars, *base, *offset, *ty,
                        *site, &likely, mem_loc,
                    );
                    stmt
                }
                Inst::CheckLoad {
                    dst,
                    base,
                    offset,
                    ty,
                    kind,
                    site,
                } => {
                    let mut stmt = HStmt::new(HStmtKind::CheckLoad {
                        dst: (*dst, UNV),
                        base: unversioned(*base),
                        offset: *offset,
                        ty: *ty,
                        kind: *kind,
                        site: *site,
                        dvar: None,
                    });
                    attach_load_lists(
                        &mut stmt, globals, f, fid, aa, &catalog, &mem_vars, *base, *offset, *ty,
                        *site, &likely, mem_loc,
                    );
                    stmt
                }
                Inst::Store {
                    base,
                    offset,
                    val,
                    ty,
                    site,
                } => {
                    let mut stmt = HStmt::new(HStmtKind::Store {
                        base: unversioned(*base),
                        offset: *offset,
                        val: unversioned(*val),
                        ty: *ty,
                        site: *site,
                        dvar_def: None,
                    });
                    match base {
                        Operand::GlobalAddr(_) | Operand::SlotAddr(_) => {
                            // direct store: strong def + chi on the vvar of
                            // the variable's class (indirect loads may read
                            // what we just wrote)
                            let mv = direct_memvar(*base, *offset);
                            let id = catalog.get(HVarKind::Mem(mv)).expect("interned");
                            if let HStmtKind::Store { dvar_def, .. } = &mut stmt.kind {
                                *dvar_def = Some((id, UNV));
                            }
                            let c = aa.loc_class(mem_loc(mv));
                            for &(vid, vc) in &virt_vars {
                                if vc == c {
                                    stmt.chi.push(ChiOp {
                                        var: vid,
                                        new_ver: UNV,
                                        old_ver: UNV,
                                        likely: likely(SiteQuery::StoreChiVirt {
                                            site: *site,
                                            syntax: None,
                                        }),
                                    });
                                }
                            }
                        }
                        Operand::Var(sb) => {
                            // indirect store: chi on the vvar and on every
                            // TBAA-compatible aliased real variable
                            let c = aa.access_class(fid, *base).unwrap_or(ClassId(u32::MAX));
                            let vv = catalog.get(HVarKind::Virt(c)).expect("interned");
                            stmt.chi.push(ChiOp {
                                var: vv,
                                new_ver: UNV,
                                old_ver: UNV,
                                likely: likely(SiteQuery::StoreChiVirt {
                                    site: *site,
                                    syntax: Some((*sb, *offset)),
                                }),
                            });
                            for &(id, mv, mc) in &mem_vars {
                                if mc == c && mem_ty(mv).tbaa_may_alias(*ty) {
                                    stmt.chi.push(ChiOp {
                                        var: id,
                                        new_ver: UNV,
                                        old_ver: UNV,
                                        likely: likely(SiteQuery::StoreChiMem {
                                            site: *site,
                                            loc: mem_loc(mv),
                                        }),
                                    });
                                }
                            }
                        }
                        _ => {}
                    }
                    stmt
                }
                Inst::Call {
                    dst,
                    callee,
                    args,
                    site,
                } => {
                    let mut stmt = HStmt::new(HStmtKind::Call {
                        dst: dst.map(|d| (d, UNV)),
                        callee: *callee,
                        args: args.iter().map(|&a| unversioned(a)).collect(),
                        site: *site,
                    });
                    let mods = aa.func_mod(*callee);
                    let refs = aa.func_ref(*callee);
                    // Heuristic rule 3: "the side effects of procedure calls
                    // obtained from compiler analysis are all assumed highly
                    // likely. Hence, all chi definitions in the procedure
                    // call are changed into chi_s. The mu list of the
                    // procedure call remains unchanged."
                    for &(id, mv, mc) in &mem_vars {
                        let loc = mem_loc(mv);
                        if mods.contains(&mc) {
                            stmt.chi.push(ChiOp {
                                var: id,
                                new_ver: UNV,
                                old_ver: UNV,
                                likely: likely(SiteQuery::CallChiMem { site: *site, loc }),
                            });
                        }
                        if refs.contains(&mc) {
                            stmt.mu.push(MuOp {
                                var: id,
                                ver: UNV,
                                likely: likely(SiteQuery::CallMuMem { site: *site, loc }),
                            });
                        }
                    }
                    for &(vid, vc) in &virt_vars {
                        let class_locs = aa.locs_in_class(vc);
                        if mods.contains(&vc) {
                            stmt.chi.push(ChiOp {
                                var: vid,
                                new_ver: UNV,
                                old_ver: UNV,
                                likely: likely(SiteQuery::CallChiVirt {
                                    site: *site,
                                    class_locs,
                                }),
                            });
                        }
                        if refs.contains(&vc) {
                            stmt.mu.push(MuOp {
                                var: vid,
                                ver: UNV,
                                likely: likely(SiteQuery::CallMuVirt),
                            });
                        }
                    }
                    stmt
                }
                Inst::Alloc { dst, words, site } => HStmt::new(HStmtKind::Alloc {
                    dst: (*dst, UNV),
                    words: unversioned(*words),
                    site: *site,
                }),
            };
            hb.stmts.push(stmt);
        }
        hb.term = Some(match &b.term {
            Terminator::Jump(t) => HTerm::Jump(*t),
            Terminator::Br { cond, then_, else_ } => HTerm::Br {
                cond: unversioned(*cond),
                then_: *then_,
                else_: *else_,
            },
            Terminator::Ret(v) => HTerm::Ret(v.map(unversioned)),
        });
        blocks.push(hb);
    }

    // ---- phi insertion ----
    let (dt, df) = (&fa.dt, &fa.df);
    let mut def_blocks: Vec<Vec<BlockId>> = vec![Vec::new(); catalog.len()];
    for (bi, hb) in blocks.iter().enumerate() {
        let bid = BlockId::from_index(bi);
        for stmt in &hb.stmts {
            if let Some((v, _)) = stmt.def_reg() {
                let id = catalog.get(HVarKind::Reg(v)).expect("reg interned");
                def_blocks[id.index()].push(bid);
            }
            if let HStmtKind::Store {
                dvar_def: Some((id, _)),
                ..
            } = &stmt.kind
            {
                def_blocks[id.index()].push(bid);
            }
            for c in &stmt.chi {
                def_blocks[c.var.index()].push(bid);
            }
        }
    }
    let preds = f.predecessors();
    for (vi, defs) in def_blocks.iter().enumerate() {
        if defs.is_empty() {
            continue;
        }
        let var = HVarId(vi as u32);
        for join in iterated_df(df, defs.iter().copied()) {
            if !dt.is_reachable(join) {
                continue;
            }
            let hb = &mut blocks[join.index()];
            hb.phis.push(Phi {
                var,
                dest: UNV,
                args: vec![UNV; preds[join.index()].len()],
            });
        }
    }

    // ---- renaming ----
    let mut hf = HssaFunc {
        func: fid,
        catalog,
        blocks,
        preds,
        next_ver: Vec::new(),
        new_vars: Vec::new(),
        first_new_var: f.vars.len() as u32,
        collapsed_vars: Vec::new(),
    };
    rename(f, dt, &mut hf);
    hf
}

fn direct_memvar(base: Operand, off: i64) -> MemVar {
    match base {
        Operand::GlobalAddr(g) => MemVar {
            base: MemBase::Global(g),
            off,
        },
        Operand::SlotAddr(s) => MemVar {
            base: MemBase::Slot(s),
            off,
        },
        _ => unreachable!("direct_memvar on indirect base"),
    }
}

fn unversioned(o: Operand) -> HOperand {
    match o {
        Operand::Var(v) => HOperand::Reg(v, u32::MAX),
        Operand::ConstI(c) => HOperand::ConstI(c),
        Operand::ConstF(c) => HOperand::ConstF(c),
        Operand::GlobalAddr(g) => HOperand::GlobalAddr(g),
        Operand::SlotAddr(s) => HOperand::SlotAddr(s),
    }
}

#[allow(clippy::too_many_arguments)]
fn attach_load_lists(
    stmt: &mut HStmt,
    globals: &[Global],
    f: &Function,
    fid: FuncId,
    aa: &AliasAnalysis,
    catalog: &VarCatalog,
    mem_vars: &[(HVarId, MemVar, ClassId)],
    base: Operand,
    offset: i64,
    ty: Ty,
    site: specframe_ir::MemSiteId,
    likely: &dyn Fn(SiteQuery<'_>) -> bool,
    mem_loc: impl Fn(MemVar) -> Loc,
) {
    match base {
        Operand::GlobalAddr(_) | Operand::SlotAddr(_) => {
            let mv = direct_memvar(base, offset);
            let id = catalog.get(HVarKind::Mem(mv)).expect("interned");
            match &mut stmt.kind {
                HStmtKind::Load { dvar, .. } | HStmtKind::CheckLoad { dvar, .. } => {
                    *dvar = Some((id, u32::MAX));
                }
                _ => unreachable!(),
            }
        }
        Operand::Var(_) => {
            let c = aa.access_class(fid, base).unwrap_or(ClassId(u32::MAX));
            let vv = catalog.get(HVarKind::Virt(c)).expect("interned");
            // paper's Example 1: `= *p` carries mu(a), mu(b), mu(v)
            stmt.mu.push(MuOp {
                var: vv,
                ver: u32::MAX,
                likely: likely(SiteQuery::LoadMuVirt { site }),
            });
            for &(id, mv, mc) in mem_vars {
                let loc = mem_loc(mv);
                let mvt = match mv.base {
                    MemBase::Global(g) => globals[g.index()].ty,
                    MemBase::Slot(s) => f.slots[s.index()].ty,
                };
                if mc == c && mvt.tbaa_may_alias(ty) {
                    stmt.mu.push(MuOp {
                        var: id,
                        ver: u32::MAX,
                        likely: likely(SiteQuery::LoadMuMem { site, loc }),
                    });
                }
            }
        }
        _ => {}
    }
}

fn rename(f: &Function, dt: &DomTree, hf: &mut HssaFunc) {
    let nvars = hf.catalog.len();
    hf.next_ver = vec![1; nvars];
    let mut stacks: Vec<Vec<u32>> = vec![vec![0]; nvars];

    // iterative preorder with explicit pop lists
    enum Action {
        Visit(BlockId),
        Pop(Vec<HVarId>),
    }
    let mut worklist = vec![Action::Visit(f.entry())];
    while let Some(action) = worklist.pop() {
        match action {
            Action::Pop(vars) => {
                for v in vars {
                    stacks[v.index()].pop();
                }
            }
            Action::Visit(b) => {
                let mut pushed: Vec<HVarId> = Vec::new();
                let block = &mut hf.blocks[b.index()];

                for phi in &mut block.phis {
                    let ver = hf.next_ver[phi.var.index()];
                    hf.next_ver[phi.var.index()] += 1;
                    phi.dest = ver;
                    stacks[phi.var.index()].push(ver);
                    pushed.push(phi.var);
                }

                for stmt in &mut block.stmts {
                    // uses first
                    version_operands(&mut stmt.kind, &stacks, &hf.catalog);
                    for mu in &mut stmt.mu {
                        mu.ver = *stacks[mu.var.index()].last().unwrap();
                    }
                    if let HStmtKind::Load {
                        dvar: Some((id, ver)),
                        ..
                    }
                    | HStmtKind::CheckLoad {
                        dvar: Some((id, ver)),
                        ..
                    } = &mut stmt.kind
                    {
                        *ver = *stacks[id.index()].last().unwrap();
                    }
                    // then defs
                    if let HStmtKind::Store {
                        dvar_def: Some((id, ver)),
                        ..
                    } = &mut stmt.kind
                    {
                        let nv = hf.next_ver[id.index()];
                        hf.next_ver[id.index()] += 1;
                        *ver = nv;
                        stacks[id.index()].push(nv);
                        pushed.push(*id);
                    }
                    if let Some((v, _)) = stmt.def_reg() {
                        let id = hf.catalog.get(HVarKind::Reg(v)).expect("reg");
                        let nv = hf.next_ver[id.index()];
                        hf.next_ver[id.index()] += 1;
                        set_def_ver(&mut stmt.kind, nv);
                        stacks[id.index()].push(nv);
                        pushed.push(id);
                    }
                    for chi in &mut stmt.chi {
                        chi.old_ver = *stacks[chi.var.index()].last().unwrap();
                        let nv = hf.next_ver[chi.var.index()];
                        hf.next_ver[chi.var.index()] += 1;
                        chi.new_ver = nv;
                        stacks[chi.var.index()].push(nv);
                        pushed.push(chi.var);
                    }
                }

                if let Some(term) = &mut block.term {
                    match term {
                        HTerm::Br { cond, .. } => version_operand(cond, &stacks, &hf.catalog),
                        HTerm::Ret(Some(v)) => version_operand(v, &stacks, &hf.catalog),
                        _ => {}
                    }
                }

                // fill phi args in successors
                let succs = hf.blocks[b.index()]
                    .term
                    .as_ref()
                    .map(|t| t.successors())
                    .unwrap_or_default();
                for s in succs {
                    if let Some(pi) = hf.pred_index(s, b) {
                        for phi in &mut hf.blocks[s.index()].phis {
                            phi.args[pi] = *stacks[phi.var.index()].last().unwrap();
                        }
                    }
                }

                worklist.push(Action::Pop(pushed));
                for &c in dt.children(b).iter().rev() {
                    worklist.push(Action::Visit(c));
                }
            }
        }
    }
}

fn version_operand(o: &mut HOperand, stacks: &[Vec<u32>], catalog: &VarCatalog) {
    if let HOperand::Reg(v, ver) = o {
        let id = catalog.get(HVarKind::Reg(*v)).expect("reg interned");
        *ver = *stacks[id.index()].last().unwrap();
    }
}

fn version_operands(kind: &mut HStmtKind, stacks: &[Vec<u32>], catalog: &VarCatalog) {
    match kind {
        HStmtKind::Bin { a, b, .. } => {
            version_operand(a, stacks, catalog);
            version_operand(b, stacks, catalog);
        }
        HStmtKind::Un { a, .. } => version_operand(a, stacks, catalog),
        HStmtKind::Copy { src, .. } => version_operand(src, stacks, catalog),
        HStmtKind::Load { base, .. } | HStmtKind::CheckLoad { base, .. } => {
            version_operand(base, stacks, catalog)
        }
        HStmtKind::Store { base, val, .. } => {
            version_operand(base, stacks, catalog);
            version_operand(val, stacks, catalog);
        }
        HStmtKind::Call { args, .. } => {
            for a in args {
                version_operand(a, stacks, catalog);
            }
        }
        HStmtKind::Alloc { words, .. } => version_operand(words, stacks, catalog),
    }
}

fn set_def_ver(kind: &mut HStmtKind, nv: u32) {
    match kind {
        HStmtKind::Bin { dst, .. }
        | HStmtKind::Un { dst, .. }
        | HStmtKind::Copy { dst, .. }
        | HStmtKind::Load { dst, .. }
        | HStmtKind::CheckLoad { dst, .. }
        | HStmtKind::Alloc { dst, .. } => dst.1 = nv,
        HStmtKind::Call { dst: Some(d), .. } => d.1 = nv,
        HStmtKind::Call { dst: None, .. } | HStmtKind::Store { .. } => {}
    }
}

/// A structural HSSA validation failure, anchored to the block the
/// violation was observed in (when block-local). The driver's verify-each
/// hook reads `block` to render `pass=<p> fn=<f> bb=<n>` attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HssaVerifyError {
    /// Block index the violation is anchored to, if block-local.
    pub block: Option<usize>,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for HssaVerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for HssaVerifyError {}

/// Structural SSA validation for tests and property checks.
///
/// Verifies that every version is defined at most once, that no placeholder
/// (`u32::MAX`) versions survive renaming, and that φ argument counts match
/// predecessor counts.
///
/// # Errors
/// Returns a description of the first violation.
pub fn verify_hssa(hf: &HssaFunc) -> Result<(), String> {
    verify_hssa_detailed(hf).map_err(|e| e.msg)
}

/// [`verify_hssa`] with structured block attribution, plus a stale-version
/// range check: renaming hands out versions strictly below
/// [`HssaFunc::next_ver`], so any occurrence at or above that bound was
/// fabricated after Rename ran (e.g. a χ whose operand version was never
/// issued) — the corruption class the verify-each hook exists to catch.
///
/// # Errors
/// Returns the first violation with the block it was observed in.
pub fn verify_hssa_detailed(hf: &HssaFunc) -> Result<(), HssaVerifyError> {
    let at = |bi: usize, msg: String| HssaVerifyError {
        block: Some(bi),
        msg,
    };
    // ver == u32::MAX is reported by the unrenamed checks, not as stale
    let stale = |var: HVarId, ver: u32| -> Option<u32> {
        let next = hf.next_ver.get(var.index()).copied().unwrap_or(0);
        (ver != u32::MAX && ver != 0 && ver >= next).then_some(next)
    };
    let mut defined: FxHashMap<(HVarId, u32), u32> = FxHashMap::default();
    let mut define = |var: HVarId, ver: u32| -> Result<(), String> {
        if ver == u32::MAX {
            return Err(format!("unrenamed def of {var:?}"));
        }
        if ver == 0 {
            return Err(format!("version 0 of {var:?} redefined"));
        }
        let n = defined.entry((var, ver)).or_insert(0);
        *n += 1;
        if *n > 1 {
            return Err(format!("{var:?} version {ver} defined twice"));
        }
        Ok(())
    };
    for (bi, b) in hf.blocks.iter().enumerate() {
        for phi in &b.phis {
            define(phi.var, phi.dest).map_err(|m| at(bi, m))?;
            if phi.args.len() != hf.preds[bi].len() {
                return Err(at(bi, format!("phi arg count mismatch in block {bi}")));
            }
            if phi.args.contains(&u32::MAX) {
                return Err(at(bi, format!("unrenamed phi arg in block {bi}")));
            }
            for &arg in std::iter::once(&phi.dest).chain(&phi.args) {
                if let Some(next) = stale(phi.var, arg) {
                    return Err(at(
                        bi,
                        format!(
                            "stale version {arg} of {:?} in phi (next unissued is {next})",
                            phi.var
                        ),
                    ));
                }
            }
        }
        for stmt in &b.stmts {
            for (v, ver) in stmt.reg_uses() {
                if ver == u32::MAX {
                    return Err(at(bi, format!("unrenamed use of {v} in block {bi}")));
                }
                if let Some(id) = hf.catalog.get(HVarKind::Reg(v)) {
                    if let Some(next) = stale(id, ver) {
                        return Err(at(
                            bi,
                            format!("stale version {ver} of {v} used (next unissued is {next})"),
                        ));
                    }
                }
            }
            for mu in &stmt.mu {
                if mu.ver == u32::MAX {
                    return Err(at(bi, format!("unrenamed mu in block {bi}")));
                }
                if let Some(next) = stale(mu.var, mu.ver) {
                    return Err(at(
                        bi,
                        format!(
                            "stale version {} of {:?} in mu (next unissued is {next})",
                            mu.ver, mu.var
                        ),
                    ));
                }
            }
            if let Some((v, ver)) = stmt.def_reg() {
                let id = hf
                    .catalog
                    .get(HVarKind::Reg(v))
                    .ok_or_else(|| at(bi, format!("def of uncataloged {v}")))?;
                define(id, ver).map_err(|m| at(bi, m))?;
                if let Some(next) = stale(id, ver) {
                    return Err(at(
                        bi,
                        format!("stale version {ver} of {v} defined (next unissued is {next})"),
                    ));
                }
            }
            if let HStmtKind::Store {
                dvar_def: Some((id, ver)),
                ..
            } = &stmt.kind
            {
                define(*id, *ver).map_err(|m| at(bi, m))?;
                if let Some(next) = stale(*id, *ver) {
                    return Err(at(
                        bi,
                        format!(
                            "stale version {ver} of {id:?} in store def (next unissued is {next})"
                        ),
                    ));
                }
            }
            for chi in &stmt.chi {
                if chi.old_ver == u32::MAX {
                    return Err(at(bi, format!("unrenamed chi old version in block {bi}")));
                }
                define(chi.var, chi.new_ver).map_err(|m| at(bi, m))?;
                for ver in [chi.old_ver, chi.new_ver] {
                    if let Some(next) = stale(chi.var, ver) {
                        return Err(at(
                            bi,
                            format!(
                                "stale version {ver} of {:?} in chi (next unissued is {next})",
                                chi.var
                            ),
                        ));
                    }
                }
            }
        }
        if b.term.is_none() {
            return Err(at(bi, format!("block {bi} lost its terminator")));
        }
    }
    verify_dominance(hf).map_err(|msg| HssaVerifyError { block: None, msg })?;
    Ok(())
}

/// Checks the SSA dominance property for register variables: every use of
/// `(reg, version)` must be dominated by its definition (statement order
/// within a block, dominator tree across blocks). Versions of *collapsed*
/// registers are exempt — their versions deliberately alias one machine
/// register and availability is guaranteed by SSAPRE's will-be-available
/// analysis instead.
fn verify_dominance(hf: &HssaFunc) -> Result<(), String> {
    let collapsed: FxHashSet<VarId> = hf.collapsed_vars.iter().copied().collect();

    // def location per (reg, ver): block + position (-1 = phi at entry of
    // block, entry for version 0)
    #[derive(Clone, Copy, PartialEq)]
    enum DefAt {
        Entry,
        Phi(BlockId),
        Stmt(BlockId, usize),
    }
    let mut defs: FxHashMap<(VarId, u32), DefAt> = FxHashMap::default();
    for (i, v) in (0..hf.catalog.len()).filter_map(|i| {
        let id = HVarId(i as u32);
        match hf.catalog.kind(id) {
            HVarKind::Reg(v) => Some((id, v)),
            _ => None,
        }
    }) {
        let _ = i;
        defs.insert((v, 0), DefAt::Entry);
    }
    for b in hf.block_ids() {
        for phi in &hf.blocks[b.index()].phis {
            if let HVarKind::Reg(v) = hf.catalog.kind(phi.var) {
                defs.insert((v, phi.dest), DefAt::Phi(b));
            }
        }
        for (si, stmt) in hf.blocks[b.index()].stmts.iter().enumerate() {
            if let Some((v, ver)) = stmt.def_reg() {
                defs.insert((v, ver), DefAt::Stmt(b, si));
            }
        }
    }

    // dominator tree over the HSSA's own terminators
    let doms = hssa_dominators(hf);
    let dominates = |a: BlockId, b: BlockId| -> bool {
        let mut cur = Some(b);
        while let Some(c) = cur {
            if c == a {
                return true;
            }
            cur = doms[c.index()];
            if cur == Some(c) {
                return false;
            }
        }
        false
    };

    let check_use = |v: VarId, ver: u32, at_block: BlockId, at_stmt: usize| -> Result<(), String> {
        if collapsed.contains(&v) {
            return Ok(());
        }
        match defs.get(&(v, ver)) {
            None => Err(format!("use of undefined {v}@{ver}")),
            Some(DefAt::Entry) => Ok(()),
            Some(DefAt::Phi(db)) => {
                if dominates(*db, at_block) {
                    Ok(())
                } else {
                    Err(format!("use of {v}@{ver} not dominated by its phi"))
                }
            }
            Some(DefAt::Stmt(db, dsi)) => {
                if *db == at_block {
                    if *dsi < at_stmt {
                        Ok(())
                    } else {
                        Err(format!("use of {v}@{ver} before its def in block {db}"))
                    }
                } else if dominates(*db, at_block) {
                    Ok(())
                } else {
                    Err(format!("use of {v}@{ver} not dominated by its def"))
                }
            }
        }
    };

    for b in hf.block_ids() {
        let blk = &hf.blocks[b.index()];
        for (si, stmt) in blk.stmts.iter().enumerate() {
            for (v, ver) in stmt.reg_uses() {
                check_use(v, ver, b, si)?;
            }
        }
        let end = blk.stmts.len();
        match &blk.term {
            Some(HTerm::Br {
                cond: crate::stmt::HOperand::Reg(v, ver),
                ..
            }) => {
                check_use(*v, *ver, b, end + 1)?;
            }
            Some(HTerm::Ret(Some(crate::stmt::HOperand::Reg(v, ver)))) => {
                check_use(*v, *ver, b, end + 1)?;
            }
            _ => {}
        }
        // phi args must be dominated by their defs at the end of the
        // corresponding predecessor
        for phi in &blk.phis {
            if let HVarKind::Reg(v) = hf.catalog.kind(phi.var) {
                for (pi, &arg) in phi.args.iter().enumerate() {
                    let pred = hf.preds[b.index()][pi];
                    // version 0 fallback on never-taken paths is allowed
                    if arg == 0 {
                        continue;
                    }
                    check_use(v, arg, pred, usize::MAX - 1)?;
                }
            }
        }
    }
    Ok(())
}

/// Simple iterative dominator computation over the HSSA terminators
/// (blocks may differ from the base function after optimization only in
/// statement content, but this keeps the verifier self-contained).
fn hssa_dominators(hf: &HssaFunc) -> Vec<Option<BlockId>> {
    let n = hf.blocks.len();
    let entry = BlockId(0);
    // reverse postorder
    let mut state = vec![0u8; n];
    let mut post: Vec<BlockId> = Vec::new();
    let mut stack: Vec<(BlockId, usize)> = vec![(entry, 0)];
    state[entry.index()] = 1;
    while let Some(&mut (b, ref mut cur)) = stack.last_mut() {
        let succs = hf.blocks[b.index()]
            .term
            .as_ref()
            .map(|t| t.successors())
            .unwrap_or_default();
        if *cur < succs.len() {
            let s = succs[*cur];
            *cur += 1;
            if state[s.index()] == 0 {
                state[s.index()] = 1;
                stack.push((s, 0));
            }
        } else {
            post.push(b);
            stack.pop();
        }
    }
    post.reverse();
    let mut rpo_num = vec![usize::MAX; n];
    for (i, &b) in post.iter().enumerate() {
        rpo_num[b.index()] = i;
    }
    let mut idom: Vec<Option<BlockId>> = vec![None; n];
    idom[entry.index()] = Some(entry);
    let mut changed = true;
    while changed {
        changed = false;
        for &b in post.iter().skip(1) {
            let mut new: Option<BlockId> = None;
            for &p in &hf.preds[b.index()] {
                if idom[p.index()].is_none() {
                    continue;
                }
                new = Some(match new {
                    None => p,
                    Some(cur) => {
                        let (mut x, mut y) = (p, cur);
                        while x != y {
                            while rpo_num[x.index()] > rpo_num[y.index()] {
                                x = idom[x.index()].unwrap();
                            }
                            while rpo_num[y.index()] > rpo_num[x.index()] {
                                y = idom[y.index()].unwrap();
                            }
                        }
                        x
                    }
                });
            }
            if let Some(ni) = new {
                if idom[b.index()] != Some(ni) {
                    idom[b.index()] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    idom[entry.index()] = None;
    idom
}

#[cfg(test)]
mod tests {
    use super::*;
    use specframe_ir::parse_module;

    fn analyze(src: &str) -> (Module, AliasAnalysis) {
        let m = parse_module(src).unwrap();
        let aa = AliasAnalysis::analyze(&m);
        (m, aa)
    }

    /// The paper's Example 1 (§3.1): `*p` aliases `a` and `b`; with a
    /// profile showing only `b` is touched, the χ over `b` is flagged and
    /// the χ over `a` stays a speculative weak update.
    const EXAMPLE1: &str = r#"
global a: i64[1]
global b: i64[1]

func ex1(p: ptr) -> i64 {
  var x: i64
  var y: i64
entry:
  store.i64 [@a], 1
  store.i64 [@b], 2
  store.i64 [p], 4
  x = load.i64 [@a]
  store.i64 [@a], 4
  y = load.i64 [p]
  ret y
}
"#;

    fn example1_pointing_to_b() -> (Module, AliasAnalysis) {
        // make p point to both a and b statically: caller passes either
        let src = r#"
global a: i64[1]
global b: i64[1]

func ex1(p: ptr) -> i64 {
  var x: i64
  var y: i64
entry:
  store.i64 [@a], 1
  store.i64 [@b], 2
  store.i64 [p], 4
  x = load.i64 [@a]
  store.i64 [@a], 4
  y = load.i64 [p]
  ret y
}

func main(sel: i64) -> i64 {
  var q: ptr
  var r: i64
entry:
  br sel, ua, ub
ua:
  q = @a
  jmp go
ub:
  q = @b
  jmp go
go:
  r = call ex1(q)
  ret r
}
"#;
        analyze(src)
    }

    #[test]
    fn chi_lists_cover_aliased_vars() {
        let (m, aa) = example1_pointing_to_b();
        let fid = m.func_by_name("ex1").unwrap();
        let hf = build_hssa(&m, fid, &aa, SpecMode::NoSpeculation);
        verify_hssa(&hf).unwrap();
        // stmt 2 is the indirect store *p: chi over vvar + a + b
        let st = &hf.blocks[0].stmts[2];
        assert!(matches!(st.kind, HStmtKind::Store { dvar_def: None, .. }));
        assert_eq!(st.chi.len(), 3, "chi: {:?}", st.chi);
        assert!(st.chi.iter().all(|c| c.likely));
        // stmt 5 is the indirect load *p: mu over vvar + a + b
        let ld = &hf.blocks[0].stmts[5];
        assert_eq!(ld.mu.len(), 3, "mu: {:?}", ld.mu);
    }

    #[test]
    fn profile_flags_follow_observed_locs() {
        let (m, aa) = example1_pointing_to_b();
        // run main with sel=0 so p == &b: profile sees only b
        let mut prof = specframe_profile::AliasProfiler::new();
        specframe_profile::run_with(&m, "main", &[specframe_ir::Value::I(0)], 10_000, &mut prof)
            .unwrap();
        let profile = prof.finish();
        let fid = m.func_by_name("ex1").unwrap();
        let hf = build_hssa(&m, fid, &aa, SpecMode::Profile(&profile));
        verify_hssa(&hf).unwrap();

        let ga = m.global_by_name("a").unwrap();
        let gb = m.global_by_name("b").unwrap();
        let id_a = hf
            .catalog
            .get(HVarKind::Mem(MemVar {
                base: MemBase::Global(ga),
                off: 0,
            }))
            .unwrap();
        let id_b = hf
            .catalog
            .get(HVarKind::Mem(MemVar {
                base: MemBase::Global(gb),
                off: 0,
            }))
            .unwrap();
        let st = &hf.blocks[0].stmts[2];
        let chi_a = st.chi_of(id_a).expect("chi over a");
        let chi_b = st.chi_of(id_b).expect("chi over b");
        // §3.2.1: b was touched -> chi_s; a was not -> speculative weak update
        assert!(!chi_a.likely, "a must be a weak update");
        assert!(chi_b.likely, "b must be flagged");
        assert!(st.is_weak_update_of(id_a));
        assert!(!st.is_weak_update_of(id_b));
    }

    #[test]
    fn no_spec_mode_flags_everything() {
        let (m, aa) = analyze(EXAMPLE1);
        let fid = m.func_by_name("ex1").unwrap();
        let hf = build_hssa(&m, fid, &aa, SpecMode::NoSpeculation);
        for b in &hf.blocks {
            for s in &b.stmts {
                assert!(s.chi.iter().all(|c| c.likely));
                assert!(s.mu.iter().all(|u| u.likely));
            }
        }
    }

    #[test]
    fn aggressive_mode_flags_nothing() {
        let (m, aa) = example1_pointing_to_b();
        let fid = m.func_by_name("ex1").unwrap();
        let hf = build_hssa(&m, fid, &aa, SpecMode::Aggressive);
        for b in &hf.blocks {
            for s in &b.stmts {
                assert!(s.chi.iter().all(|c| !c.likely));
            }
        }
    }

    #[test]
    fn renaming_gives_unique_versions_and_phis_merge() {
        let src = r#"
global g: i64[1]

func f(n: i64) -> i64 {
  var i: i64
  var c: i64
  var v: i64
entry:
  i = 0
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
  v = load.i64 [@g]
  v = add v, 1
  store.i64 [@g], v
  i = add i, 1
  jmp head
exit:
  v = load.i64 [@g]
  ret v
}
"#;
        let (m, aa) = analyze(src);
        let fid = m.func_by_name("f").unwrap();
        let hf = build_hssa(&m, fid, &aa, SpecMode::NoSpeculation);
        verify_hssa(&hf).unwrap();
        // the loop header must merge i and the memory variable g
        let gb = m.global_by_name("g").unwrap();
        let id_g = hf
            .catalog
            .get(HVarKind::Mem(MemVar {
                base: MemBase::Global(gb),
                off: 0,
            }))
            .unwrap();
        let head = &hf.blocks[1];
        assert!(head.phis.iter().any(|p| p.var == id_g), "phi for g at head");
        let id_i = hf.catalog.get(HVarKind::Reg(VarId(1))).unwrap();
        assert!(head.phis.iter().any(|p| p.var == id_i), "phi for i at head");
    }

    #[test]
    fn direct_store_strongly_defines() {
        let (m, aa) = example1_pointing_to_b();
        let fid = m.func_by_name("ex1").unwrap();
        let hf = build_hssa(&m, fid, &aa, SpecMode::NoSpeculation);
        let s0 = &hf.blocks[0].stmts[0]; // store.i64 [@a], 1
        let HStmtKind::Store {
            dvar_def: Some((_, v1)),
            ..
        } = s0.kind
        else {
            panic!("expected direct store def")
        };
        let s3 = &hf.blocks[0].stmts[4]; // store.i64 [@a], 4
        let HStmtKind::Store {
            dvar_def: Some((_, v2)),
            ..
        } = s3.kind
        else {
            panic!()
        };
        assert_ne!(v1, v2);
        // the load of a in between reads the version the chi of *p defined
        let ld = &hf.blocks[0].stmts[3];
        let HStmtKind::Load {
            dvar: Some((_, vload)),
            ..
        } = ld.kind
        else {
            panic!()
        };
        // store@0 defines v1; *p's chi defines v_chi > v1; load reads v_chi
        assert!(vload > v1);
        assert_ne!(vload, v2);
    }

    #[test]
    fn calls_get_mod_ref_lists() {
        let src = r#"
global g: i64[1]

func set() {
entry:
  store.i64 [@g], 1
  ret
}

func f() -> i64 {
  var v: i64
entry:
  v = load.i64 [@g]
  call set()
  v = load.i64 [@g]
  ret v
}
"#;
        let (m, aa) = analyze(src);
        let fid = m.func_by_name("f").unwrap();
        let hf = build_hssa(&m, fid, &aa, SpecMode::Heuristic);
        let call = &hf.blocks[0].stmts[1];
        assert!(matches!(call.kind, HStmtKind::Call { .. }));
        assert_eq!(call.chi.len(), 1, "call must chi g");
        // heuristic rule 3: call chis are flagged likely
        assert!(call.chi[0].likely);
    }
}
