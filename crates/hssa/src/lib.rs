//! # specframe-hssa
//!
//! The **speculative SSA form** of §3 of the paper — an HSSA variant (Chow
//! et al., CC '96) in which may-def (χ) and may-use (μ) operators carry a
//! *speculation flag* saying whether the alias they model is **highly
//! likely** to be substantiated at run time:
//!
//! * a flagged χ (`χs`) is a *speculative update*: it must be honoured;
//! * an **unflagged χ is a speculative weak update**: optimizations may
//!   ignore it, provided a check instruction (`ld.c`) re-validates the
//!   speculated value at the original location;
//! * flagged μ (`μs`) marks a reference that is highly likely to actually
//!   touch the variable.
//!
//! Flags come from an **alias profile** (§3.2.1) or from the three
//! **heuristic rules** of §3.2.2; with speculation disabled every χ/μ is
//! flagged, which degenerates to classic HSSA and gives the paper's O3
//! baseline.
//!
//! Module map:
//! * [`hvar`] — the SSA variable space: registers, direct-memory variables
//!   ("real variables"), and one *virtual variable* per Steensgaard alias
//!   class (the paper's vvar assignment rule);
//! * [`stmt`] — versioned statements, φ nodes, χ/μ operators;
//! * [`build`] — χ/μ list construction, speculation-flag assignment, φ
//!   insertion and renaming (Figure 4's pipeline);
//! * [`oracle`] — the [`Likeliness`] oracle, the single seam answering
//!   every χ/μ likeliness question (§3.2's profile and heuristic sources);
//! * [`lower`] — out-of-SSA lowering back to executable IR;
//! * [`mod@print`] — paper-style textual dumps (`a2 <- chi(a1)`, `mu_s(b2)`).

pub mod build;
pub mod hvar;
pub mod lower;
pub mod oracle;
pub mod print;
pub mod refine;
pub mod stmt;

pub use build::{
    build_hssa, build_hssa_in, build_hssa_with, verify_hssa, verify_hssa_detailed, HssaVerifyError,
    SpecMode,
};
pub use hvar::{HVarId, HVarKind, MemBase, MemVar, VarCatalog};
pub use lower::{lower_function, lower_hssa, resolve_fresh_sites, LOCAL_FRESH_BASE};
pub use oracle::{
    ChiRefine, FnEvidence, Likeliness, RefineStmt, SiteQuery, SpecCosts, Verdict, Why,
};
pub use print::{print_hssa, print_hssa_in};
pub use refine::{
    fold_known_addresses, fold_known_addresses_in, refine_function, refine_function_in,
};
pub use stmt::{ChiOp, HBlock, HOperand, HStmt, HStmtKind, HTerm, HssaFunc, MuOp, Phi, FRESH_SITE};
