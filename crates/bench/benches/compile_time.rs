//! Criterion benches: compile-time cost of the speculative pipeline.
//!
//! The paper's framework claim is that data speculation drops into the
//! existing SSAPRE at modest compiler cost (the changes are confined to
//! Φ-Insertion, Rename and CodeMotion). These benches measure that cost:
//! per-pass and per-configuration wall time over the eight workloads, plus
//! the analysis substrate (alias analysis, HSSA construction, profiling).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use specframe_alias::AliasAnalysis;
use specframe_core::{
    optimize, optimize_with, prepare_module, ControlSpec, OptOptions, PipelineConfig, SpecSource,
};
use specframe_hssa::{build_hssa, SpecMode};
use specframe_ir::FuncId;
use specframe_profile::{run_with, AliasProfiler};
use specframe_workloads::{all_workloads, workload_by_name, Scale};
use std::time::Duration;

fn bench_optimize_configs(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimize");
    for w in all_workloads(Scale::Test) {
        let mut prepared = w.module.clone();
        prepare_module(&mut prepared);
        let mut ap = AliasProfiler::new();
        run_with(&prepared, w.entry, &w.train_args, w.fuel, &mut ap).unwrap();
        let aprof = ap.finish();

        group.bench_with_input(BenchmarkId::new("baseline", w.name), &prepared, |b, m| {
            b.iter(|| {
                let mut m = m.clone();
                optimize(
                    &mut m,
                    &OptOptions {
                        data: SpecSource::None,
                        control: ControlSpec::Static,
                        strength_reduction: true,
                        lftr: true,
                        store_sinking: false,
                        target: Default::default(),
                    },
                )
            })
        });
        group.bench_with_input(
            BenchmarkId::new("speculative", w.name),
            &prepared,
            |b, m| {
                b.iter(|| {
                    let mut m = m.clone();
                    optimize(
                        &mut m,
                        &OptOptions {
                            data: SpecSource::Profile(&aprof),
                            control: ControlSpec::Static,
                            strength_reduction: true,
                            lftr: true,
                            store_sinking: false,
                            target: Default::default(),
                        },
                    )
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("heuristic", w.name), &prepared, |b, m| {
            b.iter(|| {
                let mut m = m.clone();
                optimize(
                    &mut m,
                    &OptOptions {
                        data: SpecSource::Heuristic,
                        control: ControlSpec::Static,
                        strength_reduction: true,
                        lftr: true,
                        store_sinking: false,
                        target: Default::default(),
                    },
                )
            })
        });
    }
    group.finish();
}

fn bench_substrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate");
    for w in all_workloads(Scale::Test) {
        let mut prepared = w.module.clone();
        prepare_module(&mut prepared);

        group.bench_with_input(
            BenchmarkId::new("alias_analysis", w.name),
            &prepared,
            |b, m| b.iter(|| AliasAnalysis::analyze(m)),
        );
        let aa = AliasAnalysis::analyze(&prepared);
        group.bench_with_input(BenchmarkId::new("hssa_build", w.name), &prepared, |b, m| {
            b.iter(|| {
                for fi in 0..m.funcs.len() {
                    build_hssa(m, FuncId::from_index(fi), &aa, SpecMode::NoSpeculation);
                }
            })
        });
        group.bench_with_input(
            BenchmarkId::new("alias_profiling", w.name),
            &prepared,
            |b, m| {
                b.iter(|| {
                    let mut ap = AliasProfiler::new();
                    run_with(m, w.entry, &w.train_args, w.fuel, &mut ap).unwrap();
                    ap.finish()
                })
            },
        );
    }
    group.finish();
}

/// Driver-parallelism scaling: the full speculative pipeline over the
/// `many_funcs` workload (32 independent functions) with a serial worker
/// pool vs one worker per hardware thread. Same work, same output (see
/// `tests/parallel_determinism.rs`) — only the fan-out width changes.
fn bench_parallel_driver(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_driver");
    let w = workload_by_name("many_funcs", Scale::Test).expect("many_funcs workload");
    let mut prepared = w.module.clone();
    prepare_module(&mut prepared);

    let opts = OptOptions {
        data: SpecSource::Heuristic,
        control: ControlSpec::Static,
        strength_reduction: true,
        lftr: true,
        store_sinking: true,
        target: Default::default(),
    };
    // On a single-core host jobs=N can at best tie jobs=1; still measure
    // the threaded pool (≥ 4 workers) so its overhead stays visible.
    let nproc = std::thread::available_parallelism().map_or(1, |n| n.get());
    for jobs in [1, nproc.max(4)] {
        group.bench_with_input(
            BenchmarkId::new(format!("many_funcs/jobs={jobs}"), "optimize"),
            &prepared,
            |b, m| {
                b.iter(|| {
                    let mut m = m.clone();
                    optimize_with(&mut m, &opts, &PipelineConfig { jobs })
                })
            },
        );
    }
    group.finish();
}

fn configured() -> Criterion {
    // keep `cargo bench --workspace` under a few minutes: each measurement
    // is microseconds-to-milliseconds, so short windows are plenty
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_optimize_configs, bench_substrate, bench_parallel_driver
}
criterion_main!(benches);
