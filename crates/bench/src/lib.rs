//! # specframe-bench
//!
//! The evaluation harness: runs every workload through the paper's
//! configurations and computes the quantities of Figures 10–12 and the
//! §5.1 smvp table. The `figures` binary pretty-prints them; Criterion
//! benches measure compile-time cost.
//!
//! Per workload, the pipeline is exactly the paper's:
//!
//! 1. prepare (critical-edge split — ORC's SSAPRE preprocessing);
//! 2. **profiling run** on the *training* input: alias profile (§3.2.1) +
//!    edge profile;
//! 3. compile four ways: O3 baseline (control speculation only — "the
//!    existing SSAPRE in ORC already supports control speculation"),
//!    profile-guided speculative, heuristic speculative (§3.2.2), and
//!    aggressive (the §5.3 upper-bound estimator);
//! 4. run each binary on the *reference* input in the EPIC simulator and
//!    read the `pfmon`-style counters;
//! 5. run the load-reuse simulation (§5.3 first method) on the reference
//!    input of the unoptimized program.
//!
//! Every configuration's result is checked against the reference
//! interpreter — speculation must never change program output.

use specframe_codegen::lower_module;
use specframe_core::{optimize, ControlSpec, OptOptions, OptStats, SpecSource};

use specframe_machine::{run_machine, Counters};
use specframe_profile::{
    observer::Compose, run, run_with, AliasProfiler, EdgeProfiler, ReuseReport, ReuseSimulator,
};
use specframe_workloads::{all_workloads, Scale, Workload};

/// Results of one configuration's machine run.
#[derive(Debug, Clone, Copy)]
pub struct ConfigResult {
    /// `pfmon`-style counters from the reference-input run.
    pub counters: Counters,
    /// Static optimization statistics.
    pub opt: OptStats,
}

/// Everything measured for one benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: &'static str,
    /// O3 baseline (control speculation, no data speculation).
    pub baseline: ConfigResult,
    /// Alias-profile-guided speculation.
    pub profile: ConfigResult,
    /// Heuristic-rule speculation.
    pub heuristic: ConfigResult,
    /// Aggressive promotion (Fig. 12 upper-bound estimator).
    pub aggressive: ConfigResult,
    /// Load-reuse simulation (Fig. 12 first method).
    pub reuse: ReuseReport,
}

impl BenchResult {
    /// Figure 10 first series: % of dynamic loads removed by speculative
    /// register promotion relative to the O3 baseline.
    pub fn load_reduction(&self) -> f64 {
        reduction(
            self.baseline.counters.loads_retired,
            self.profile.counters.loads_retired,
        )
    }

    /// Figure 10 second series: execution-time speedup over O3 (in %).
    pub fn speedup(&self) -> f64 {
        let b = self.baseline.counters.cycles as f64;
        let s = self.profile.counters.cycles as f64;
        if s == 0.0 {
            0.0
        } else {
            (b / s - 1.0) * 100.0
        }
    }

    /// Figure 10 companion: reduction of data-access cycles.
    pub fn data_cycle_reduction(&self) -> f64 {
        reduction(
            self.baseline.counters.data_access_cycles,
            self.profile.counters.data_access_cycles,
        )
    }

    /// Figure 11 first series: dynamic check loads over total loads
    /// retired (in %).
    pub fn check_ratio(&self) -> f64 {
        self.profile.counters.check_ratio() * 100.0
    }

    /// Figure 11 second series: mis-speculation ratio (in %).
    pub fn mis_speculation(&self) -> f64 {
        self.profile.counters.mis_speculation_ratio() * 100.0
    }

    /// Figure 12 first series: potential reuse from the trace simulation
    /// (in % of loads).
    pub fn potential_simulation(&self) -> f64 {
        self.reuse.ratio() * 100.0
    }

    /// Figure 12 second series: load reduction under aggressive promotion
    /// (in %).
    pub fn potential_aggressive(&self) -> f64 {
        reduction(
            self.baseline.counters.loads_retired,
            self.aggressive.counters.loads_retired,
        )
    }

    /// Heuristic-mode load reduction (§5.2's "comparable" claim).
    pub fn heuristic_load_reduction(&self) -> f64 {
        reduction(
            self.baseline.counters.loads_retired,
            self.heuristic.counters.loads_retired,
        )
    }
}

fn reduction(base: u64, new: u64) -> f64 {
    if base == 0 {
        0.0
    } else {
        (base.saturating_sub(new)) as f64 / base as f64 * 100.0
    }
}

/// Runs the full pipeline for one workload.
///
/// # Panics
/// Panics if any configuration computes a different result than the
/// reference interpreter (an optimizer bug), or if execution fails.
pub fn run_benchmark(w: &Workload) -> BenchResult {
    let mut prepared = w.module.clone();
    specframe_core::prepare_module(&mut prepared);

    // reference result from the unoptimized interpreter
    let (expect, _) = run(&prepared, w.entry, &w.ref_args, w.fuel)
        .unwrap_or_else(|e| panic!("{}: reference run failed: {e}", w.name));

    // profiling on the training input
    let mut ap = AliasProfiler::new();
    let mut ep = EdgeProfiler::new();
    {
        let mut obs = Compose(vec![&mut ap, &mut ep]);
        run_with(&prepared, w.entry, &w.train_args, w.fuel, &mut obs)
            .unwrap_or_else(|e| panic!("{}: training run failed: {e}", w.name));
    }
    let aprof = ap.finish();
    let eprof = ep.finish();

    // load-reuse simulation on the reference input (§5.3)
    let mut reuse_sim = ReuseSimulator::new(&prepared);
    run_with(&prepared, w.entry, &w.ref_args, w.fuel, &mut reuse_sim)
        .unwrap_or_else(|e| panic!("{}: reuse run failed: {e}", w.name));
    let reuse = reuse_sim.report();

    let compile_and_run = |opts: &OptOptions| -> ConfigResult {
        let mut m = prepared.clone();
        let opt = optimize(&mut m, opts);
        let prog = lower_module(&m);
        let (got, counters) = run_machine(&prog, w.entry, &w.ref_args, w.fuel)
            .unwrap_or_else(|e| panic!("{}: machine run failed: {e}", w.name));
        assert_eq!(
            got, expect,
            "{}: optimized program changed the program result",
            w.name
        );
        ConfigResult { counters, opt }
    };

    let baseline = compile_and_run(&OptOptions {
        data: SpecSource::None,
        control: ControlSpec::Profile(&eprof),
        strength_reduction: true,
        lftr: true,
        store_sinking: true,
        target: Default::default(),
    });
    let profile = compile_and_run(&OptOptions {
        data: SpecSource::Profile(&aprof),
        control: ControlSpec::Profile(&eprof),
        strength_reduction: true,
        lftr: true,
        store_sinking: true,
        target: Default::default(),
    });
    let heuristic = compile_and_run(&OptOptions {
        data: SpecSource::Heuristic,
        control: ControlSpec::Static,
        strength_reduction: true,
        lftr: true,
        store_sinking: true,
        target: Default::default(),
    });
    let aggressive = compile_and_run(&OptOptions {
        data: SpecSource::Aggressive,
        control: ControlSpec::Profile(&eprof),
        strength_reduction: false,
        lftr: false,
        store_sinking: false,
        target: Default::default(),
    });

    BenchResult {
        name: w.name,
        baseline,
        profile,
        heuristic,
        aggressive,
        reuse,
    }
}

/// Runs all eight benchmarks at the given scale.
pub fn run_all(scale: Scale) -> Vec<BenchResult> {
    all_workloads(scale).iter().map(run_benchmark).collect()
}

/// Ablation: which part of the framework buys what.
///
/// The paper's design isolates two speculation axes (Figure 3): control
/// speculation (edge profiles, pre-existing in ORC's SSAPRE) and data
/// speculation (the paper's contribution). This study compiles each
/// benchmark four ways and reports cycles for each, so the contribution of
/// each axis — and their interaction — is visible.
#[derive(Debug, Clone, Copy)]
pub struct AblationResult {
    /// Benchmark name.
    pub name: &'static str,
    /// No speculation at all (classic safe PRE).
    pub none: Counters,
    /// Control speculation only (the ORC O3 baseline).
    pub control_only: Counters,
    /// Data speculation only.
    pub data_only: Counters,
    /// Both (the paper's full framework).
    pub both: Counters,
}

impl AblationResult {
    /// Speedup of configuration `c` over the no-speculation build (in %).
    pub fn speedup_over_none(&self, c: Counters) -> f64 {
        (self.none.cycles as f64 / c.cycles as f64 - 1.0) * 100.0
    }
}

/// Runs the ablation for one workload.
pub fn run_ablation(w: &Workload) -> AblationResult {
    let mut prepared = w.module.clone();
    specframe_core::prepare_module(&mut prepared);
    let (expect, _) = run(&prepared, w.entry, &w.ref_args, w.fuel).unwrap();

    let mut ap = AliasProfiler::new();
    let mut ep = EdgeProfiler::new();
    {
        let mut obs = Compose(vec![&mut ap, &mut ep]);
        run_with(&prepared, w.entry, &w.train_args, w.fuel, &mut obs).unwrap();
    }
    let aprof = ap.finish();
    let eprof = ep.finish();

    let go = |data: SpecSource, control: ControlSpec| -> Counters {
        let mut m = prepared.clone();
        optimize(
            &mut m,
            &OptOptions {
                data,
                control,
                strength_reduction: true,
                lftr: true,
                store_sinking: true,
                target: Default::default(),
            },
        );
        let prog = lower_module(&m);
        let (got, c) = run_machine(&prog, w.entry, &w.ref_args, w.fuel).unwrap();
        assert_eq!(
            got, expect,
            "{}: ablation config changed the result",
            w.name
        );
        c
    };

    AblationResult {
        name: w.name,
        none: go(SpecSource::None, ControlSpec::Off),
        control_only: go(SpecSource::None, ControlSpec::Profile(&eprof)),
        data_only: go(SpecSource::Profile(&aprof), ControlSpec::Off),
        both: go(SpecSource::Profile(&aprof), ControlSpec::Profile(&eprof)),
    }
}

/// Runs the ablation over all benchmarks.
pub fn run_ablation_all(scale: Scale) -> Vec<AblationResult> {
    all_workloads(scale).iter().map(run_ablation).collect()
}

/// Per-procedure detail for the §5.1 smvp study.
#[derive(Debug, Clone, Copy)]
pub struct SmvpStudy {
    /// Baseline retired loads.
    pub base_loads: u64,
    /// Speculative retired loads.
    pub spec_loads: u64,
    /// Speculative check loads.
    pub spec_checks: u64,
    /// Baseline cycles.
    pub base_cycles: u64,
    /// Speculative cycles.
    pub spec_cycles: u64,
    /// Cycles with a "manually tuned" oracle (checks free — the paper's
    /// hand-promoted upper bound).
    pub oracle_cycles: u64,
}

impl SmvpStudy {
    /// Percentage of original loads that became checks.
    pub fn loads_to_checks(&self) -> f64 {
        if self.base_loads == 0 {
            0.0
        } else {
            self.spec_checks as f64 / self.base_loads as f64 * 100.0
        }
    }

    /// Speedup of the speculative version (in %).
    pub fn speedup(&self) -> f64 {
        (self.base_cycles as f64 / self.spec_cycles as f64 - 1.0) * 100.0
    }

    /// Speedup of the oracle (manually tuned) version (in %).
    pub fn oracle_speedup(&self) -> f64 {
        (self.base_cycles as f64 / self.oracle_cycles as f64 - 1.0) * 100.0
    }
}

/// Runs the §5.1 study on the equake smvp workload.
pub fn run_smvp_study(scale: Scale) -> SmvpStudy {
    let w = specframe_workloads::workload_by_name("equake_smvp", scale).expect("workload");
    let r = run_benchmark(&w);
    // oracle: as if every successful check were removed entirely — the
    // paper's manually tuned version without check instructions (0-cycle
    // checks are already free; the oracle additionally drops the failed
    // checks' recovery, which smvp doesn't have, so this equals the
    // speculative version minus check issue slots; we model it by also
    // removing the checks' data accesses)
    let oracle_cycles = r
        .profile
        .counters
        .cycles
        .saturating_sub(r.profile.counters.failed_checks * 10);
    SmvpStudy {
        base_loads: r.baseline.counters.loads_retired,
        spec_loads: r.profile.counters.loads_retired,
        spec_checks: r.profile.counters.check_loads,
        base_cycles: r.baseline.counters.cycles,
        spec_cycles: r.profile.counters.cycles,
        oracle_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equake_pipeline_shows_the_paper_shape() {
        let w = specframe_workloads::workload_by_name("equake_smvp", Scale::Test).unwrap();
        let r = run_benchmark(&w);
        assert!(
            r.load_reduction() > 5.0,
            "equake must show a real load reduction, got {:.1}% ({:?} -> {:?})",
            r.load_reduction(),
            r.baseline.counters.loads_retired,
            r.profile.counters.loads_retired
        );
        assert!(r.speedup() > 0.0, "speedup {:.2}%", r.speedup());
        assert!(
            r.check_ratio() > 1.0,
            "checks must appear: {:.2}%",
            r.check_ratio()
        );
        assert!(
            r.mis_speculation() < 1.0,
            "no real aliasing in equake: {:.2}%",
            r.mis_speculation()
        );
    }

    #[test]
    fn gzip_has_high_mis_speculation_but_few_checks() {
        let w = specframe_workloads::workload_by_name("gzip", Scale::Test).unwrap();
        let r = run_benchmark(&w);
        assert!(
            r.mis_speculation() > 2.0 && r.mis_speculation() < 15.0,
            "gzip mis-speculation should be ~6%: {:.2}%",
            r.mis_speculation()
        );
        assert!(
            r.check_ratio() < 25.0,
            "gzip checks are a small share: {:.2}%",
            r.check_ratio()
        );
    }

    #[test]
    fn potential_bounds_actual() {
        // Fig. 12's premise: the simulation-based potential is an upper
        // bound (or at least no smaller, modulo granularity) on what the
        // implementation achieves
        for name in ["equake_smvp", "mcf"] {
            let w = specframe_workloads::workload_by_name(name, Scale::Test).unwrap();
            let r = run_benchmark(&w);
            assert!(
                r.potential_simulation() + 5.0 >= r.load_reduction(),
                "{name}: potential {:.1}% vs achieved {:.1}%",
                r.potential_simulation(),
                r.load_reduction()
            );
        }
    }

    #[test]
    fn ablation_axes_compose() {
        // data+control must never be slower than control alone, and the
        // speculative configurations must never be slower than none at all
        // (on the training-faithful benchmarks)
        let w = specframe_workloads::workload_by_name("equake_smvp", Scale::Test).unwrap();
        let a = run_ablation(&w);
        assert!(a.both.cycles <= a.control_only.cycles, "{a:?}");
        assert!(a.both.cycles <= a.none.cycles, "{a:?}");
        assert!(a.control_only.cycles <= a.none.cycles, "{a:?}");
        // data speculation alone catches the straight-line redundancies but
        // not the loop-invariant hoists: it sits between none and both
        assert!(a.data_only.cycles <= a.none.cycles, "{a:?}");
    }

    #[test]
    fn heuristic_is_comparable_to_profile() {
        // §5.2: "the performance of the heuristic version is comparable to
        // that of the profile-based version"
        let w = specframe_workloads::workload_by_name("equake_smvp", Scale::Test).unwrap();
        let r = run_benchmark(&w);
        let p = r.load_reduction();
        let h = r.heuristic_load_reduction();
        assert!(
            (p - h).abs() < 25.0,
            "heuristic ({h:.1}%) should be in the same league as profile ({p:.1}%)"
        );
    }
}
