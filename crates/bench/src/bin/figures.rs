//! Regenerates every table and figure of the paper's evaluation (§5).
//!
//! ```text
//! figures [--scale test|ref] [--fig10] [--fig11] [--fig12] [--smvp] [--stats] [--all]
//! ```
//!
//! With no figure flag, everything is printed. `--scale ref` uses the
//! reference-sized inputs (use a release build).

use specframe_bench::{run_ablation_all, run_all, run_smvp_study, BenchResult};
use specframe_workloads::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = match args.iter().position(|a| a == "--scale") {
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("ref") | Some("reference") => Scale::Reference,
            _ => Scale::Test,
        },
        None => Scale::Reference,
    };
    let pick = |flag: &str| args.iter().any(|a| a == flag);
    let all = pick("--all")
        || !(pick("--fig10")
            || pick("--fig11")
            || pick("--fig12")
            || pick("--smvp")
            || pick("--stats")
            || pick("--ablation"));

    eprintln!("running 8 benchmarks at {scale:?} scale (profile -> 4 configs -> simulate)...");
    let results = run_all(scale);

    if all || pick("--fig10") {
        fig10(&results);
    }
    if all || pick("--fig11") {
        fig11(&results);
    }
    if all || pick("--fig12") {
        fig12(&results);
    }
    if all || pick("--smvp") {
        smvp(scale);
    }
    if all || pick("--stats") {
        stats(&results);
    }
    if all || pick("--ablation") {
        ablation(scale);
    }
    if pick("--csv") {
        csv(&results);
    }
}

/// Machine-readable dump of every per-benchmark quantity (one row per
/// benchmark) for downstream plotting.
fn csv(rs: &[BenchResult]) {
    println!(
        "benchmark,load_reduction_pct,speedup_pct,data_cycle_reduction_pct,\
         heuristic_load_reduction_pct,check_ratio_pct,mis_speculation_pct,\
         potential_simulation_pct,potential_aggressive_pct,\
         base_loads,spec_loads,spec_checks,failed_checks,base_cycles,spec_cycles"
    );
    for r in rs {
        println!(
            "{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{},{},{},{},{},{}",
            r.name,
            r.load_reduction(),
            r.speedup(),
            r.data_cycle_reduction(),
            r.heuristic_load_reduction(),
            r.check_ratio(),
            r.mis_speculation(),
            r.potential_simulation(),
            r.potential_aggressive(),
            r.baseline.counters.loads_retired,
            r.profile.counters.loads_retired,
            r.profile.counters.check_loads,
            r.profile.counters.failed_checks,
            r.baseline.counters.cycles,
            r.profile.counters.cycles,
        );
    }
}

fn ablation(scale: Scale) {
    let rs = run_ablation_all(scale);
    println!();
    println!("Ablation: speedup over no-speculation, by speculation axis");
    println!("(control = Lo et al. PLDI'98, pre-existing in ORC; data = this paper)");
    hr();
    println!(
        "{:<14} {:>14} {:>14} {:>14}",
        "benchmark", "control-only %", "data-only %", "both %"
    );
    hr();
    for a in rs {
        println!(
            "{:<14} {:>14.2} {:>14.2} {:>14.2}",
            a.name,
            a.speedup_over_none(a.control_only),
            a.speedup_over_none(a.data_only),
            a.speedup_over_none(a.both),
        );
    }
    hr();
}

fn hr() {
    println!("{}", "-".repeat(76));
}

fn fig10(rs: &[BenchResult]) {
    println!();
    println!("Figure 10: speculative register promotion vs. O3 baseline");
    println!("(paper: 5%-14% load reduction for art/ammp/equake/mcf/twolf; gzip ~0)");
    hr();
    println!(
        "{:<14} {:>12} {:>12} {:>14} {:>12}",
        "benchmark", "loads -%", "speedup %", "data-cyc -%", "heur loads -%"
    );
    hr();
    for r in rs {
        println!(
            "{:<14} {:>12.2} {:>12.2} {:>14.2} {:>12.2}",
            r.name,
            r.load_reduction(),
            r.speedup(),
            r.data_cycle_reduction(),
            r.heuristic_load_reduction(),
        );
    }
    hr();
}

fn fig11(rs: &[BenchResult]) {
    println!();
    println!("Figure 11: check loads and mis-speculation (profile-guided config)");
    println!("(paper: mis-speculation generally <1%; gzip ~6% but few checks)");
    hr();
    println!(
        "{:<14} {:>16} {:>18} {:>14}",
        "benchmark", "checks/loads %", "mis-speculation %", "failed checks"
    );
    hr();
    for r in rs {
        println!(
            "{:<14} {:>16.2} {:>18.2} {:>14}",
            r.name,
            r.check_ratio(),
            r.mis_speculation(),
            r.profile.counters.failed_checks,
        );
    }
    hr();
}

fn fig12(rs: &[BenchResult]) {
    println!();
    println!("Figure 12: potential load reduction (two estimators) vs. achieved");
    println!("(paper: trend of potential correlates with achieved reduction)");
    hr();
    println!(
        "{:<14} {:>16} {:>18} {:>12}",
        "benchmark", "simulation %", "aggressive promo %", "achieved %"
    );
    hr();
    for r in rs {
        println!(
            "{:<14} {:>16.2} {:>18.2} {:>12.2}",
            r.name,
            r.potential_simulation(),
            r.potential_aggressive(),
            r.load_reduction(),
        );
    }
    hr();
}

fn smvp(scale: Scale) {
    let s = run_smvp_study(scale);
    println!();
    println!("Section 5.1: the smvp case study (equake)");
    println!("(paper: 39.8% of loads become checks; +6% speedup; manual bound +14%)");
    hr();
    println!("baseline loads retired     {:>12}", s.base_loads);
    println!("speculative loads retired  {:>12}", s.spec_loads);
    println!("check loads                {:>12}", s.spec_checks);
    println!("loads replaced by checks   {:>11.1}%", s.loads_to_checks());
    println!("baseline cycles            {:>12}", s.base_cycles);
    println!("speculative cycles         {:>12}", s.spec_cycles);
    println!("speedup                    {:>11.1}%", s.speedup());
    println!("oracle (manual) speedup    {:>11.1}%", s.oracle_speedup());
    hr();
}

fn stats(rs: &[BenchResult]) {
    println!();
    println!("Static optimizer statistics (profile-guided config)");
    hr();
    println!(
        "{:<14} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "benchmark", "exprs", "saves", "reloads", "checks", "ld.a", "inserts"
    );
    hr();
    for r in rs {
        let o = r.profile.opt;
        println!(
            "{:<14} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            r.name, o.transformed, o.saves, o.reloads, o.checks, o.advanced_loads, o.insertions
        );
    }
    hr();
}
