//! Quick compile-time smoke bench for CI.
//!
//! Measures the mean wall-clock cost of the full speculative pipeline
//! (heuristic data speculation + static control speculation + strength
//! reduction) per test-scale workload and writes `BENCH_ci.json` in the
//! current directory. This is a trend indicator, not a benchmark — the
//! Criterion suite in `benches/compile_time.rs` is the real measurement.

use specframe_core::{optimize, ControlSpec, OptOptions, SpecSource};
use specframe_workloads::{all_workloads, Scale};
use std::fmt::Write as _;
use std::time::Instant;

const ITERS: u32 = 3;

fn main() {
    let opts = OptOptions {
        data: SpecSource::Heuristic,
        control: ControlSpec::Static,
        strength_reduction: true,
        lftr: true,
        store_sinking: true,
    };
    let mut rows = Vec::new();
    for w in all_workloads(Scale::Test) {
        // one warm-up to take cold caches out of the mean
        optimize(&mut w.module.clone(), &opts);
        let t0 = Instant::now();
        for _ in 0..ITERS {
            optimize(&mut w.module.clone(), &opts);
        }
        let mean_ms = t0.elapsed().as_secs_f64() * 1e3 / f64::from(ITERS);
        println!("{:<16} {mean_ms:8.2} ms", w.name);
        rows.push((w.name.to_string(), mean_ms));
    }

    let mut json = String::from("{\n  \"config\": \"heuristic+static+sr+sink\",\n  \"iters\": ");
    let _ = write!(json, "{ITERS},\n  \"mean_ms\": {{\n");
    for (i, (name, ms)) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(json, "    \"{name}\": {ms:.3}{sep}");
    }
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_ci.json", json).expect("write BENCH_ci.json");
    println!("wrote BENCH_ci.json");
}
