//! Quick compile-time smoke bench for CI.
//!
//! Measures the mean wall-clock cost of the full speculative pipeline
//! (heuristic data speculation + static control speculation + strength
//! reduction) per test-scale workload and writes `BENCH_ci.json` in the
//! current directory. This is a trend indicator, not a benchmark — the
//! Criterion suite in `benches/compile_time.rs` is the real measurement.
//!
//! It also runs a deterministic smoke of the ddmin module reducer (a
//! known-failing program must shrink by at least 80% while preserving
//! the failure) and records the probe/shrink numbers in the JSON, so a
//! reducer regression shows up in the CI artifact.

use specframe_core::{
    optimize, optimize_with, peak_rss_kb, prepare_module, reduce_module, try_optimize_cached,
    ControlSpec, FuncCache, OptOptions, PipelineConfig, PipelineHooks, ReduceStats, SpecSource,
};
use specframe_ir::display::print_module;
use specframe_workloads::{all_workloads, inst_count, mega_module, Scale};
use std::fmt::Write as _;
use std::time::Instant;

const ITERS: u32 = 3;

/// Whole-module throughput numbers from one mega-module compile.
struct MegaRow {
    funcs: usize,
    insts: usize,
    funcs_per_sec: f64,
    insts_per_sec: f64,
    peak_rss_kb: u64,
}

/// Compiles the reduced-size synthetic mega-module (1k functions — the CI
/// time budget; `--mega` scales to 10k for local measurements), records
/// whole-module throughput and peak RSS, and asserts byte-identical output
/// across `jobs` 1/2/4 — the parallel driver's safety invariant, checked
/// here on a workload none of the golden files cover.
fn mega_smoke() -> MegaRow {
    const SEED: u64 = 42;
    const FUNCS: usize = 1000;
    let opts = OptOptions {
        data: SpecSource::Heuristic,
        control: ControlSpec::Static,
        strength_reduction: true,
        lftr: true,
        store_sinking: true,
        target: Default::default(),
    };
    let mut base = mega_module(SEED, FUNCS);
    prepare_module(&mut base);
    let insts = inst_count(&base);

    let t0 = Instant::now();
    let mut m1 = base.clone();
    optimize_with(&mut m1, &opts, &PipelineConfig { jobs: 1 });
    let secs = t0.elapsed().as_secs_f64();

    let text1 = print_module(&m1);
    for jobs in [2, 4] {
        let mut mj = base.clone();
        optimize_with(&mut mj, &opts, &PipelineConfig { jobs });
        assert_eq!(
            print_module(&mj),
            text1,
            "mega-module output differs between jobs=1 and jobs={jobs}"
        );
    }

    let row = MegaRow {
        funcs: FUNCS,
        insts,
        funcs_per_sec: FUNCS as f64 / secs,
        insts_per_sec: insts as f64 / secs,
        peak_rss_kb: peak_rss_kb().unwrap_or(0),
    };
    println!(
        "mega-module: {} funcs / {} insts in {:.3} s ({:.0} funcs/sec, {:.0} insts/sec, \
         peak rss {} kB), jobs 1/2/4 byte-identical",
        row.funcs, row.insts, secs, row.funcs_per_sec, row.insts_per_sec, row.peak_rss_kb
    );
    row
}

/// Cold/warm compile-cache numbers from the cache smoke.
struct CacheRow {
    funcs: usize,
    hits: u64,
    misses: u64,
    evicts: u64,
    cold_ms: f64,
    warm_ms: f64,
}

/// The compile-cache smoke gate: one cold mega-module compile populating
/// a fresh cache directory, then warm reruns at `jobs` 1/2/4. Asserts the
/// cache's contract — warm output byte-identical to both the cold run and
/// an uncached compile, a ≥ 99% warm hit rate, zero stale entries — and
/// the perf bar: the warm rerun must be at least 10× faster than cold.
///
/// The correctness assertions are hard on every attempt; the *timing* gate
/// alone retries (the shared CI container's wall clock jitters by tens of
/// percent run to run, and a single slow tick must not fail the build when
/// an immediate remeasure demonstrates the speedup).
fn cache_smoke() -> CacheRow {
    const SEED: u64 = 42;
    const FUNCS: usize = 1000;
    const ATTEMPTS: u32 = 3;
    let opts = OptOptions {
        data: SpecSource::Heuristic,
        control: ControlSpec::Static,
        strength_reduction: true,
        lftr: true,
        store_sinking: true,
        target: Default::default(),
    };
    let cfg1 = PipelineConfig { jobs: 1 };
    let hooks = PipelineHooks::default();
    let dir = std::env::temp_dir().join(format!("specframe-ci-cache-{}", std::process::id()));

    let mut base = mega_module(SEED, FUNCS);
    prepare_module(&mut base);

    let mut m0 = base.clone();
    optimize_with(&mut m0, &opts, &cfg1);
    let baseline = print_module(&m0);

    let mut row = None;
    for attempt in 1..=ATTEMPTS {
        // every attempt is a true cold start: empty directory
        let _ = std::fs::remove_dir_all(&dir);

        // the harness copy of the input stays outside both timing windows:
        // the gate compares compiles, not clones
        let mut m1 = base.clone();
        let t0 = Instant::now();
        let (cold, _) =
            try_optimize_cached(&mut m1, &opts, &cfg1, &hooks, Some(&FuncCache::open(&dir)))
                .expect("cold cached compile");
        let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(print_module(&m1), baseline, "cold cached output diverged");
        assert_eq!(cold.cache.hits, 0, "cold run on a fresh dir cannot hit");
        assert_eq!(cold.cache.misses, FUNCS as u64);

        let mut warm_ms = f64::INFINITY;
        let mut last = None;
        for jobs in [1usize, 2, 4] {
            // a freshly opened cache each time: no in-process carry-over
            let cache = FuncCache::open(&dir);
            let mut mj = base.clone();
            let t0 = Instant::now();
            let (warm, _) = try_optimize_cached(
                &mut mj,
                &opts,
                &PipelineConfig { jobs },
                &hooks,
                Some(&cache),
            )
            .expect("warm cached compile");
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            assert_eq!(
                print_module(&mj),
                baseline,
                "warm cached output diverged at jobs={jobs}"
            );
            assert!(
                warm.cache.hits as f64 >= 0.99 * FUNCS as f64,
                "warm hit rate below 99%: {:?}",
                warm.cache
            );
            assert_eq!(warm.cache.stale, 0, "{:?}", warm.cache);
            warm_ms = warm_ms.min(ms);
            last = Some(warm);
        }
        let warm = last.unwrap();
        if cold_ms < 10.0 * warm_ms {
            assert!(
                attempt < ATTEMPTS,
                "warm cache rerun not >= 10x faster after {ATTEMPTS} attempts: \
                 cold {cold_ms:.1} ms, warm {warm_ms:.1} ms"
            );
            println!(
                "cache smoke: attempt {attempt} below 10x (cold {cold_ms:.1} ms, \
                 warm {warm_ms:.1} ms), remeasuring"
            );
            continue;
        }
        row = Some(CacheRow {
            funcs: FUNCS,
            hits: warm.cache.hits,
            misses: warm.cache.misses,
            evicts: warm.cache.evicts,
            cold_ms,
            warm_ms,
        });
        break;
    }
    let _ = std::fs::remove_dir_all(&dir);
    let row = row.expect("timing gate attempts exhausted");
    println!(
        "cache smoke: cold {:.1} ms -> warm {:.1} ms ({:.1}x), {}/{} hits, \
         jobs 1/2/4 byte-identical",
        row.cold_ms,
        row.warm_ms,
        row.cold_ms / row.warm_ms,
        row.hits,
        row.funcs
    );
    row
}

/// Leak-audit and fencing numbers for the CI artifact.
struct LeakRow {
    /// Speculative-leak sites flagged across the optimized test workloads.
    sites: u64,
    /// Fences the repair transform inserted to close them.
    fences: u64,
    /// Simulator cycles of the known-leaky kernel, unfenced.
    unfenced_cycles: u64,
    /// Same kernel after fencing (the overhead is the delta).
    fenced_cycles: u64,
}

/// The speculative-leak smoke: every optimized test workload's lowering is
/// leak-audited and fenced (the re-audit must come back clean), then a
/// known-leaky kernel measures the fence's cycle overhead with the
/// architectural result pinned equal.
fn leaks_smoke() -> LeakRow {
    use specframe_machine::{fence_program, leak_audit_program, run_machine};
    let opts = OptOptions {
        data: SpecSource::Heuristic,
        control: ControlSpec::Static,
        strength_reduction: true,
        lftr: true,
        store_sinking: true,
        target: Default::default(),
    };
    let mut sites = 0u64;
    let mut fences = 0u64;
    for w in all_workloads(Scale::Test) {
        let mut m = w.module;
        prepare_module(&mut m);
        optimize(&mut m, &opts);
        let mut prog = specframe_codegen::lower_module(&m);
        sites += leak_audit_program(&prog).len() as u64;
        fences += fence_program(&mut prog);
        assert!(
            leak_audit_program(&prog).is_empty(),
            "workload {}: leak sites survive fencing",
            w.name
        );
    }
    let src = r#"
global t: i64[1] = [18]
global s: i64[4] = [7, 8, 9, 10]

func main() -> i64 {
  var p: i64
  var v: i64
entry:
  p = load.a.i64 [@t]
  v = load.i64 [p]
  p = ldc.i64 [@t]
  ret v
}
"#;
    let mut m = specframe_ir::parse_module(src).expect("leaky kernel");
    prepare_module(&mut m);
    let plain = specframe_codegen::lower_module(&m);
    let kernel_sites = leak_audit_program(&plain).len() as u64;
    assert!(kernel_sites > 0, "the leaky kernel must be flagged");
    let mut fenced = plain.clone();
    let kernel_fences = fence_program(&mut fenced);
    let (want, c0) = run_machine(&plain, "main", &[], 100_000).expect("unfenced run");
    let (got, c1) = run_machine(&fenced, "main", &[], 100_000).expect("fenced run");
    assert_eq!(want, got, "fencing changed the architectural result");
    assert!(c1.cycles >= c0.cycles, "a fence cannot be free");
    let row = LeakRow {
        sites: sites + kernel_sites,
        fences: fences + kernel_fences,
        unfenced_cycles: c0.cycles,
        fenced_cycles: c1.cycles,
    };
    println!(
        "leaks smoke: {} sites fenced with {} barriers; kernel overhead \
         {} -> {} cycles (+{})",
        row.sites,
        row.fences,
        row.unfenced_cycles,
        row.fenced_cycles,
        row.fenced_cycles - row.unfenced_cycles
    );
    row
}

/// Per-target throughput and overhead numbers for the CI artifact.
struct TargetRow {
    name: &'static str,
    funcs_per_sec: f64,
    /// Extra simulator cycles the leak fences cost on the speculative
    /// kernel (fenced minus unfenced, default fault policy).
    fence_overhead_cycles: u64,
    /// Extra cycles when every check misses (`always-miss`) — the price
    /// of the target's misspeculation-recovery shape.
    recovery_overhead_cycles: u64,
}

/// The per-target smoke: the synthetic mega-module compiled once per
/// execution target (the oracle's cost model moves with the target, so
/// these are genuinely different compiles), plus the fence and
/// misspeculation-recovery cycle overheads of the known-speculative
/// kernel on each backend. Results must stay architecturally equal on
/// every target under every measured condition.
fn targets_smoke() -> Vec<TargetRow> {
    use specframe_machine::{
        fence_program, parse_fault_policy, run_machine_on, run_machine_with_policy_on, TargetId,
    };
    const SEED: u64 = 7;
    const FUNCS: usize = 300;
    let src = r#"
global t: i64[1] = [18]
global s: i64[4] = [7, 8, 9, 10]

func main() -> i64 {
  var p: i64
  var v: i64
entry:
  p = load.a.i64 [@t]
  v = load.i64 [p]
  p = ldc.i64 [@t]
  ret v
}
"#;
    let mut rows = Vec::new();
    for target in TargetId::ALL {
        let opts = OptOptions {
            data: SpecSource::Heuristic,
            control: ControlSpec::Static,
            strength_reduction: true,
            lftr: true,
            store_sinking: true,
            target,
        };
        let mut m = mega_module(SEED, FUNCS);
        prepare_module(&mut m);
        let t0 = Instant::now();
        optimize(&mut m, &opts);
        let secs = t0.elapsed().as_secs_f64();

        let mut km = specframe_ir::parse_module(src).expect("target kernel");
        prepare_module(&mut km);
        let plain = specframe_codegen::lower_module_for(&km, target.spec());
        let mut fenced = plain.clone();
        fence_program(&mut fenced);
        let (want, c0) =
            run_machine_on(&plain, target.spec(), "main", &[], 100_000).expect("unfenced run");
        let (got, c1) =
            run_machine_on(&fenced, target.spec(), "main", &[], 100_000).expect("fenced run");
        assert_eq!(want, got, "{}: fencing changed the result", target.name());
        let miss = parse_fault_policy("always-miss").expect("always-miss policy");
        let (rec, c2) =
            run_machine_with_policy_on(&plain, target.spec(), "main", &[], 100_000, miss)
                .expect("always-miss run");
        assert_eq!(rec, want, "{}: recovery changed the result", target.name());
        let row = TargetRow {
            name: target.name(),
            funcs_per_sec: FUNCS as f64 / secs,
            fence_overhead_cycles: c1.cycles.saturating_sub(c0.cycles),
            recovery_overhead_cycles: c2.cycles.saturating_sub(c0.cycles),
        };
        println!(
            "target {}: {:.0} funcs/sec, fence overhead +{} cycles, \
             recovery overhead +{} cycles",
            row.name, row.funcs_per_sec, row.fence_overhead_cycles, row.recovery_overhead_cycles
        );
        rows.push(row);
    }
    rows
}

/// Fault-tolerance numbers for the CI artifact.
struct ChaosRow {
    /// Crashpoints exercised through the real `specc` binary.
    crashpoints: u64,
    /// Crash-then-restart drains that converged (must equal crashpoints).
    recoveries: u64,
    /// Transient cache-I/O retries the in-process fault drill drove.
    retries: u64,
    /// Injected cache I/O errors observed in that drill.
    io_errors: u64,
    /// Wall time for `specc --deadline-ms 1` to abort with exit code 5.
    deadline_abort_ms: f64,
}

/// The chaos smoke: an in-process storage-fault drill (torn writes under
/// retry must not move the output), a crash-recovery sweep killing the
/// real `specc` at every crashpoint mid-queue-drain and asserting the
/// restart converges, and a deadline-abort latency measurement.
fn chaos_smoke() -> ChaosRow {
    use specframe_core::cache::MemStore;
    use specframe_core::parse_store_fault_policy;

    // in-process drill: torn writes heal under retry, output pinned
    const SEED: u64 = 5;
    const FUNCS: usize = 50;
    let opts = OptOptions {
        data: SpecSource::Heuristic,
        control: ControlSpec::Static,
        strength_reduction: true,
        lftr: true,
        store_sinking: true,
        target: Default::default(),
    };
    let cfg = PipelineConfig { jobs: 1 };
    let hooks = PipelineHooks::default();
    let mut base = mega_module(SEED, FUNCS);
    prepare_module(&mut base);
    let mut m0 = base.clone();
    optimize_with(&mut m0, &opts, &cfg);
    let baseline = print_module(&m0);
    let policy = parse_store_fault_policy("torn-write:2").expect("policy");
    let cache = FuncCache::with_store(Box::new(MemStore::new())).with_fault_policy(policy);
    let mut m1 = base.clone();
    try_optimize_cached(&mut m1, &opts, &cfg, &hooks, Some(&cache))
        .expect("faulted cached compile");
    assert_eq!(print_module(&m1), baseline, "torn writes moved the output");
    let (retries, io_errors, _) = cache.fault_counters();
    assert!(retries > 0, "torn-write drill drove no retries");

    // crash-recovery sweep and deadline latency need the real binary
    let specc = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join("specc")))
        .filter(|p| p.exists());
    let Some(specc) = specc else {
        println!("chaos smoke: specc binary not found beside ci_smoke; skipping crash sweep");
        return ChaosRow {
            crashpoints: 0,
            recoveries: 0,
            retries,
            io_errors,
            deadline_abort_ms: 0.0,
        };
    };

    let points = [
        "cache-pre-rename",
        "cache-post-rename",
        "queue-pre-resp-rename",
        "queue-pre-remove-req",
    ];
    let tmp = std::env::temp_dir().join(format!("specframe-ci-chaos-{}", std::process::id()));
    let mut recoveries = 0u64;
    for point in points {
        let queue = tmp.join(point).join("queue");
        let cache_dir = tmp.join(point).join("cache");
        let _ = std::fs::remove_dir_all(tmp.join(point));
        std::fs::create_dir_all(&queue).expect("queue dir");
        let out_ir = tmp.join(point).join("out.ir");
        std::fs::write(
            queue.join("r.req"),
            format!("mega 9:6 -o {}\n", out_ir.display()),
        )
        .expect("request");
        let crashed = std::process::Command::new(&specc)
            .arg("--serve-queue")
            .arg(&queue)
            .arg("--cache-dir")
            .arg(&cache_dir)
            .env("SPECFRAME_CRASH_AT", format!("{point}:1"))
            .output()
            .expect("crash run");
        assert!(
            !crashed.status.success(),
            "crashpoint {point} did not abort"
        );
        let redrain = std::process::Command::new(&specc)
            .arg("--serve-queue")
            .arg(&queue)
            .arg("--cache-dir")
            .arg(&cache_dir)
            .output()
            .expect("re-drain");
        assert!(
            redrain.status.success() && queue.join("r.resp").exists() && out_ir.exists(),
            "re-drain after {point} did not converge: {}",
            String::from_utf8_lossy(&redrain.stderr)
        );
        recoveries += 1;
    }
    let _ = std::fs::remove_dir_all(&tmp);

    // deadline-abort latency: how long until --deadline-ms 1 exits code 5
    let t0 = Instant::now();
    let dl = std::process::Command::new(&specc)
        .args(["--mega", "42:1000", "--deadline-ms", "1", "--jobs", "1"])
        .output()
        .expect("deadline run");
    let deadline_abort_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        dl.status.code(),
        Some(5),
        "deadline abort should exit 5: {}",
        String::from_utf8_lossy(&dl.stderr)
    );

    let row = ChaosRow {
        crashpoints: points.len() as u64,
        recoveries,
        retries,
        io_errors,
        deadline_abort_ms,
    };
    println!(
        "chaos smoke: {}/{} crashpoint recoveries, {} retries / {} injected errors, \
         deadline abort in {:.1} ms",
        row.recoveries, row.crashpoints, row.retries, row.io_errors, row.deadline_abort_ms
    );
    row
}

/// A "failing" program for the reducer smoke: one `div` (the simulated
/// trigger) buried in filler arithmetic, helper calls, and a diamond.
/// The predicate — program still verifies and still contains a `div` —
/// stands in for "still reproduces the failure".
fn reducer_smoke() -> ReduceStats {
    let src = r#"
global a: i64[4] = [1, 2, 3, 4]

func filler(x: i64) -> i64 {
  var s: i64
  var t: i64
entry:
  s = add x, 1
  t = add s, 2
  s = add t, 3
  t = add s, 4
  s = add t, 5
  t = add s, 6
  s = add t, 7
  ret s
}

func trigger(n: i64, d: i64) -> i64 {
  var u: i64
  var v: i64
  var w: i64
  var c: i64
  var q: i64
entry:
  u = load.i64 [@a]
  v = add u, n
  w = call filler(v)
  c = lt w, n
  br c, yes, no
yes:
  v = add v, 1
  jmp join
no:
  v = add v, 2
  jmp join
join:
  q = div v, d
  w = add q, v
  u = add w, u
  v = mul u, 3
  w = add v, w
  u = add w, 1
  ret u
}
"#;
    let m = specframe_ir::parse_module(src).expect("reducer smoke program");
    let mut failing = |c: &specframe_ir::Module| {
        specframe_ir::verify_module(c).is_ok() && print_module(c).contains(" div ")
    };
    let (red, stats) = reduce_module(&m, &mut failing);
    assert!(
        print_module(&red).contains(" div "),
        "reduction lost the failure trigger"
    );
    assert!(
        stats.shrink_percent() >= 80.0,
        "reducer smoke shrank only {:.0}% ({} -> {} insts)",
        stats.shrink_percent(),
        stats.initial_insts,
        stats.final_insts
    );
    println!(
        "reducer smoke: {} probes, {} -> {} instructions ({:.0}% shrink)",
        stats.probes,
        stats.initial_insts,
        stats.final_insts,
        stats.shrink_percent()
    );
    stats
}

fn main() {
    let opts = OptOptions {
        data: SpecSource::Heuristic,
        control: ControlSpec::Static,
        strength_reduction: true,
        lftr: true,
        store_sinking: true,
        target: Default::default(),
    };
    let mut rows = Vec::new();
    for w in all_workloads(Scale::Test) {
        // one warm-up to take cold caches out of the mean
        optimize(&mut w.module.clone(), &opts);
        let t0 = Instant::now();
        for _ in 0..ITERS {
            optimize(&mut w.module.clone(), &opts);
        }
        let mean_ms = t0.elapsed().as_secs_f64() * 1e3 / f64::from(ITERS);
        println!("{:<16} {mean_ms:8.2} ms", w.name);
        rows.push((w.name.to_string(), mean_ms));
    }

    let mega = mega_smoke();
    let cache = cache_smoke();
    let leaks = leaks_smoke();
    let targets = targets_smoke();
    let chaos = chaos_smoke();
    let rs = reducer_smoke();

    let mut json = String::from("{\n  \"config\": \"heuristic+static+sr+sink\",\n  \"iters\": ");
    let _ = write!(json, "{ITERS},\n  \"mean_ms\": {{\n");
    for (i, (name, ms)) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(json, "    \"{name}\": {ms:.3}{sep}");
    }
    json.push_str("  },\n");
    let _ = writeln!(
        json,
        "  \"mega\": {{ \"funcs\": {}, \"insts\": {}, \"funcs_per_sec\": {:.0}, \
         \"insts_per_sec\": {:.0}, \"peak_rss_kb\": {} }},",
        mega.funcs, mega.insts, mega.funcs_per_sec, mega.insts_per_sec, mega.peak_rss_kb
    );
    let _ = writeln!(
        json,
        "  \"cache\": {{ \"funcs\": {}, \"hits\": {}, \"misses\": {}, \"evicts\": {}, \
         \"cold_ms\": {:.1}, \"warm_ms\": {:.1} }},",
        cache.funcs, cache.hits, cache.misses, cache.evicts, cache.cold_ms, cache.warm_ms
    );
    let _ = writeln!(
        json,
        "  \"leaks\": {{ \"sites\": {}, \"fences\": {}, \"unfenced_cycles\": {}, \
         \"fenced_cycles\": {} }},",
        leaks.sites, leaks.fences, leaks.unfenced_cycles, leaks.fenced_cycles
    );
    json.push_str("  \"targets\": {\n");
    for (i, t) in targets.iter().enumerate() {
        let sep = if i + 1 == targets.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    \"{}\": {{ \"funcs_per_sec\": {:.0}, \"fence_overhead_cycles\": {}, \
             \"recovery_overhead_cycles\": {} }}{sep}",
            t.name, t.funcs_per_sec, t.fence_overhead_cycles, t.recovery_overhead_cycles
        );
    }
    json.push_str("  },\n");
    let _ = writeln!(
        json,
        "  \"chaos\": {{ \"crashpoints\": {}, \"recoveries\": {}, \"retries\": {}, \
         \"io_errors\": {}, \"deadline_abort_ms\": {:.1} }},",
        chaos.crashpoints,
        chaos.recoveries,
        chaos.retries,
        chaos.io_errors,
        chaos.deadline_abort_ms
    );
    let _ = writeln!(
        json,
        "  \"reduce\": {{ \"probes\": {}, \"initial_insts\": {}, \
         \"final_insts\": {}, \"shrink_percent\": {:.0} }}",
        rs.probes,
        rs.initial_insts,
        rs.final_insts,
        rs.shrink_percent()
    );
    json.push_str("}\n");
    std::fs::write("BENCH_ci.json", json).expect("write BENCH_ci.json");
    println!("wrote BENCH_ci.json");
}
