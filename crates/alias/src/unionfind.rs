//! Union-find with path compression and union by rank.

/// A classic disjoint-set forest over `u32` node ids.
///
/// `find` uses iterative path halving; `union` is by rank. Amortized cost is
/// effectively constant, which is what gives Steensgaard's analysis its
/// almost-linear bound.
#[derive(Debug, Clone, Default)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// An empty forest.
    pub fn new() -> UnionFind {
        UnionFind::default()
    }

    /// Adds a fresh singleton node and returns its id.
    pub fn push(&mut self) -> u32 {
        let id = self.parent.len() as u32;
        self.parent.push(id);
        self.rank.push(0);
        id
    }

    /// Number of nodes ever created.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the forest is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The representative of `x`'s class.
    pub fn find(&mut self, mut x: u32) -> u32 {
        loop {
            let p = self.parent[x as usize];
            if p == x {
                return x;
            }
            let gp = self.parent[p as usize];
            self.parent[x as usize] = gp; // path halving
            x = gp;
        }
    }

    /// Read-only find (no compression) for use from shared contexts.
    pub fn find_const(&self, mut x: u32) -> u32 {
        loop {
            let p = self.parent[x as usize];
            if p == x {
                return x;
            }
            x = p;
        }
    }

    /// Merges the classes of `a` and `b`; returns the surviving
    /// representative.
    pub fn union(&mut self, a: u32, b: u32) -> u32 {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return ra;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        hi
    }

    /// Whether `a` and `b` are in the same class.
    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_distinct() {
        let mut uf = UnionFind::new();
        let a = uf.push();
        let b = uf.push();
        assert!(!uf.same(a, b));
        assert_eq!(uf.len(), 2);
    }

    #[test]
    fn union_links_classes_transitively() {
        let mut uf = UnionFind::new();
        let ids: Vec<u32> = (0..6).map(|_| uf.push()).collect();
        uf.union(ids[0], ids[1]);
        uf.union(ids[2], ids[3]);
        assert!(!uf.same(ids[0], ids[2]));
        uf.union(ids[1], ids[3]);
        assert!(uf.same(ids[0], ids[2]));
        assert!(!uf.same(ids[0], ids[4]));
    }

    #[test]
    fn find_const_matches_find() {
        let mut uf = UnionFind::new();
        let ids: Vec<u32> = (0..10).map(|_| uf.push()).collect();
        for w in ids.windows(2) {
            uf.union(w[0], w[1]);
        }
        let rep = uf.find(ids[0]);
        for &i in &ids {
            assert_eq!(uf.find_const(i), rep);
        }
    }

    #[cfg(test)]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// union is an equivalence closure: after arbitrary unions,
            /// same() is reflexive/symmetric/transitive and agrees with a
            /// naive labelling.
            #[test]
            fn matches_naive_model(ops in proptest::collection::vec((0u32..32, 0u32..32), 0..64)) {
                let mut uf = UnionFind::new();
                for _ in 0..32 { uf.push(); }
                // naive model: label vector, relabel on union
                let mut label: Vec<u32> = (0..32).collect();
                for &(a, b) in &ops {
                    uf.union(a, b);
                    let (la, lb) = (label[a as usize], label[b as usize]);
                    if la != lb {
                        for l in label.iter_mut() {
                            if *l == lb { *l = la; }
                        }
                    }
                }
                for i in 0..32u32 {
                    for j in 0..32u32 {
                        prop_assert_eq!(
                            uf.same(i, j),
                            label[i as usize] == label[j as usize]
                        );
                    }
                }
            }
        }
    }
}
