//! Abstract memory locations.

use specframe_ir::{AllocSiteId, FuncSlot, GlobalId, Module, Ty};
use std::collections::BTreeSet;

/// An abstract memory location (the paper's "LOC", §3.2.1): a storage
/// object distinguishable by the compiler and the profiler.
///
/// Heap objects have no source names, so — following the paper — each is
/// named by its allocation site: every object allocated by the same
/// `alloc` instruction is the same LOC (one of the granularity choices
/// studied in the authors' LCPC '02 companion paper).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Loc {
    /// A module global.
    Global(GlobalId),
    /// A stack slot of a particular function.
    Slot(FuncSlot),
    /// All heap objects allocated at one site.
    Heap(AllocSiteId),
}

impl Loc {
    /// The declared element type of the location, if statically known.
    /// Heap objects are untyped (they alias every access type).
    pub fn ty(self, m: &Module) -> Option<Ty> {
        match self {
            Loc::Global(g) => Some(m.globals[g.index()].ty),
            Loc::Slot(fs) => Some(m.funcs[fs.func.index()].slots[fs.slot.index()].ty),
            Loc::Heap(_) => None,
        }
    }

    /// Whether an access of type `access_ty` may touch this location under
    /// type-based alias analysis.
    pub fn tbaa_may_alias(self, m: &Module, access_ty: Ty) -> bool {
        match self.ty(m) {
            Some(t) => t.tbaa_may_alias(access_ty),
            None => true,
        }
    }
}

impl core::fmt::Display for Loc {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Loc::Global(g) => write!(f, "G{}", g.0),
            Loc::Slot(fs) => write!(f, "S{}.{}", fs.func.0, fs.slot.0),
            Loc::Heap(h) => write!(f, "H{}", h.0),
        }
    }
}

/// An ordered set of LOCs — the value type of alias profiles ("for each
/// indirect memory reference, there is a LOC set to represent the
/// collection of memory locations accessed by the reference at runtime").
pub type LocSet = BTreeSet<Loc>;

#[cfg(test)]
mod tests {
    use super::*;
    use specframe_ir::{ModuleBuilder, SlotId};

    #[test]
    fn loc_types_resolve() {
        let mut mb = ModuleBuilder::new();
        let g = mb.global("g", 1, Ty::F64);
        let f = mb.declare_func("f", &[], None);
        {
            let mut fb = mb.define(f);
            fb.slot("s", 4, Ty::I64);
            fb.ret(None);
        }
        let m = mb.finish();
        assert_eq!(Loc::Global(g).ty(&m), Some(Ty::F64));
        let slot = Loc::Slot(FuncSlot {
            func: f,
            slot: SlotId(0),
        });
        assert_eq!(slot.ty(&m), Some(Ty::I64));
        assert_eq!(Loc::Heap(specframe_ir::AllocSiteId(0)).ty(&m), None);
    }

    #[test]
    fn tbaa_filters_typed_locs_but_not_heap() {
        let mut mb = ModuleBuilder::new();
        let g = mb.global("g", 1, Ty::F64);
        let m = mb.finish();
        assert!(!Loc::Global(g).tbaa_may_alias(&m, Ty::I64));
        assert!(Loc::Global(g).tbaa_may_alias(&m, Ty::F64));
        assert!(Loc::Heap(specframe_ir::AllocSiteId(3)).tbaa_may_alias(&m, Ty::I64));
    }

    #[test]
    fn locs_order_deterministically() {
        let mut s = LocSet::new();
        s.insert(Loc::Heap(specframe_ir::AllocSiteId(0)));
        s.insert(Loc::Global(GlobalId(1)));
        s.insert(Loc::Global(GlobalId(0)));
        let v: Vec<_> = s.into_iter().collect();
        assert_eq!(v[0], Loc::Global(GlobalId(0)));
        assert_eq!(v[1], Loc::Global(GlobalId(1)));
    }
}
