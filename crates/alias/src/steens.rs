//! Steensgaard equivalence-class alias analysis and mod/ref summaries.
//!
//! This is the analysis the paper's Figure 4 starts from: *"we can use the
//! equivalence class based alias analysis proposed by Steensgaard to
//! generate the alias equivalence classes for the memory references within a
//! procedure. Each alias class represents a set of real program variables.
//! Next, we assign a unique virtual variable for each alias class."*
//!
//! ## Model
//!
//! Every IR register and every [`Loc`] gets a union-find node. A node plays
//! two roles at once (the classic Steensgaard conflation): as the *value*
//! held by a register or stored in a location, and as the *location* itself.
//! Each class carries one optional `pointee` class:
//!
//! * `x = y`            → `join(x, y)`
//! * `x = &loc`         → `join(pointee(x), loc)`
//! * `x = *p` (load)    → `join(x, pointee(p))`
//! * `*p = v` (store)   → `join(pointee(p), v)`
//! * `x = alloc@h`      → `join(pointee(x), loc(h))`
//! * `x = a ⊕ b`        → `join(x, a)`, `join(x, b)` (pointer arithmetic
//!   stays within the pointed-to object class)
//! * `r = call f(a…)`   → args joined with params, `r` joined with `f`'s
//!   return node
//!
//! The set of LOCs an indirect reference `*p` may access is then the set of
//! location nodes in `class(pointee(p))` — and that class id is exactly what
//! `specframe-hssa` uses to assign virtual variables.
//!
//! ## Mod/ref
//!
//! For call-site χ/μ lists the analysis also computes, per function, the
//! classes it may store to (`mod`) and load from (`ref`), closed over the
//! call graph.

use crate::loc::Loc;
use crate::unionfind::UnionFind;
use specframe_ir::{FuncId, FuncSlot, Inst, Module, Operand, Terminator, Ty, VarId};
use std::collections::{BTreeSet, HashMap};

/// A final alias class: the canonical union-find representative after
/// solving. Two references with the same class may alias; references with
/// different classes provably never alias (under Steensgaard's assumptions).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ClassId(pub u32);

/// Solved module-wide alias information.
#[derive(Debug)]
pub struct AliasAnalysis {
    /// Final representative per node.
    rep: Vec<u32>,
    /// Final pointee class per representative (dense, u32::MAX = none).
    pointee: Vec<u32>,
    /// First node id of each function's register block.
    var_base: Vec<u32>,
    /// Node id per Loc, in enumeration order.
    loc_node: HashMap<Loc, u32>,
    /// LOC members per final class.
    members: HashMap<ClassId, Vec<Loc>>,
    /// Per function: classes possibly stored to (transitively).
    mods: Vec<BTreeSet<ClassId>>,
    /// Per function: classes possibly loaded from (transitively).
    refs: Vec<BTreeSet<ClassId>>,
}

struct Solver {
    uf: UnionFind,
    pointee: HashMap<u32, u32>, // keyed by current rep
}

impl Solver {
    fn push(&mut self) -> u32 {
        self.uf.push()
    }

    fn pointee_of(&mut self, n: u32) -> u32 {
        let r = self.uf.find(n);
        if let Some(&p) = self.pointee.get(&r) {
            self.uf.find(p)
        } else {
            let fresh = self.uf.push();
            self.pointee.insert(r, fresh);
            fresh
        }
    }

    fn join(&mut self, a: u32, b: u32) {
        let mut work = vec![(a, b)];
        while let Some((a, b)) = work.pop() {
            let ra = self.uf.find(a);
            let rb = self.uf.find(b);
            if ra == rb {
                continue;
            }
            let pa = self.pointee.remove(&ra);
            let pb = self.pointee.remove(&rb);
            let r = self.uf.union(ra, rb);
            match (pa, pb) {
                (Some(x), Some(y)) => {
                    self.pointee.insert(r, x);
                    work.push((x, y));
                }
                (Some(x), None) | (None, Some(x)) => {
                    self.pointee.insert(r, x);
                }
                (None, None) => {}
            }
        }
    }
}

impl AliasAnalysis {
    /// Runs the analysis over a whole module.
    pub fn analyze(m: &Module) -> AliasAnalysis {
        let mut s = Solver {
            uf: UnionFind::new(),
            pointee: HashMap::new(),
        };

        // register nodes, function by function
        let mut var_base = Vec::with_capacity(m.funcs.len());
        for f in &m.funcs {
            var_base.push(s.uf.len() as u32);
            for _ in &f.vars {
                s.push();
            }
        }
        // return-value node per function
        let ret_base = s.uf.len() as u32;
        for _ in &m.funcs {
            s.push();
        }
        // LOC nodes
        let mut loc_node: HashMap<Loc, u32> = HashMap::new();
        for (gi, _) in m.globals.iter().enumerate() {
            let n = s.push();
            loc_node.insert(Loc::Global(specframe_ir::GlobalId::from_index(gi)), n);
        }
        for (fi, f) in m.funcs.iter().enumerate() {
            for (si, _) in f.slots.iter().enumerate() {
                let n = s.push();
                loc_node.insert(
                    Loc::Slot(FuncSlot {
                        func: FuncId::from_index(fi),
                        slot: specframe_ir::SlotId::from_index(si),
                    }),
                    n,
                );
            }
        }
        for h in 0..m.next_alloc_site {
            let n = s.push();
            loc_node.insert(Loc::Heap(specframe_ir::AllocSiteId(h)), n);
        }

        let var_node = |fid: usize, v: VarId| var_base[fid] + v.0;

        // one pass over every instruction generates all constraints;
        // union-find makes the analysis flow-insensitive so one pass suffices
        for (fi, f) in m.funcs.iter().enumerate() {
            // `flow(dst, operand)`: dst may receive operand's value
            let flow = |s: &mut Solver, dst: u32, op: Operand| match op {
                Operand::Var(v) => s.join(dst, var_node(fi, v)),
                Operand::GlobalAddr(g) => {
                    let l = loc_node[&Loc::Global(g)];
                    let p = s.pointee_of(dst);
                    s.join(p, l);
                }
                Operand::SlotAddr(sl) => {
                    let l = loc_node[&Loc::Slot(FuncSlot {
                        func: FuncId::from_index(fi),
                        slot: sl,
                    })];
                    let p = s.pointee_of(dst);
                    s.join(p, l);
                }
                Operand::ConstI(_) | Operand::ConstF(_) => {}
            };

            for b in &f.blocks {
                for inst in &b.insts {
                    match inst {
                        Inst::Copy { dst, src } => flow(&mut s, var_node(fi, *dst), *src),
                        Inst::Bin { dst, a, b, .. } => {
                            flow(&mut s, var_node(fi, *dst), *a);
                            flow(&mut s, var_node(fi, *dst), *b);
                        }
                        Inst::Un { dst, a, .. } => flow(&mut s, var_node(fi, *dst), *a),
                        Inst::Load { dst, base, .. } | Inst::CheckLoad { dst, base, .. } => {
                            match base {
                                Operand::Var(p) => {
                                    let pt = s.pointee_of(var_node(fi, *p));
                                    s.join(var_node(fi, *dst), pt);
                                }
                                Operand::GlobalAddr(g) => {
                                    let l = loc_node[&Loc::Global(*g)];
                                    let contents = s.pointee_of(l);
                                    s.join(var_node(fi, *dst), contents);
                                }
                                Operand::SlotAddr(sl) => {
                                    let l = loc_node[&Loc::Slot(FuncSlot {
                                        func: FuncId::from_index(fi),
                                        slot: *sl,
                                    })];
                                    let contents = s.pointee_of(l);
                                    s.join(var_node(fi, *dst), contents);
                                }
                                _ => {}
                            }
                        }
                        Inst::Store { base, val, .. } => match base {
                            Operand::Var(p) => {
                                let pt = s.pointee_of(var_node(fi, *p));
                                match val {
                                    Operand::Var(v) => s.join(pt, var_node(fi, *v)),
                                    Operand::GlobalAddr(g) => {
                                        let l = loc_node[&Loc::Global(*g)];
                                        let pp = s.pointee_of(pt);
                                        s.join(pp, l);
                                    }
                                    Operand::SlotAddr(sl) => {
                                        let l = loc_node[&Loc::Slot(FuncSlot {
                                            func: FuncId::from_index(fi),
                                            slot: *sl,
                                        })];
                                        let pp = s.pointee_of(pt);
                                        s.join(pp, l);
                                    }
                                    _ => {}
                                }
                            }
                            Operand::GlobalAddr(g) => {
                                let l = loc_node[&Loc::Global(*g)];
                                let contents = s.pointee_of(l);
                                match val {
                                    Operand::Var(v) => s.join(contents, var_node(fi, *v)),
                                    Operand::GlobalAddr(g2) => {
                                        let l2 = loc_node[&Loc::Global(*g2)];
                                        let pp = s.pointee_of(contents);
                                        s.join(pp, l2);
                                    }
                                    Operand::SlotAddr(sl) => {
                                        let l2 = loc_node[&Loc::Slot(FuncSlot {
                                            func: FuncId::from_index(fi),
                                            slot: *sl,
                                        })];
                                        let pp = s.pointee_of(contents);
                                        s.join(pp, l2);
                                    }
                                    _ => {}
                                }
                            }
                            Operand::SlotAddr(sl) => {
                                let l = loc_node[&Loc::Slot(FuncSlot {
                                    func: FuncId::from_index(fi),
                                    slot: *sl,
                                })];
                                let contents = s.pointee_of(l);
                                if let Operand::Var(v) = val {
                                    s.join(contents, var_node(fi, *v));
                                }
                            }
                            _ => {}
                        },
                        Inst::Call {
                            dst, callee, args, ..
                        } => {
                            let cf = callee.index();
                            for (k, a) in args.iter().enumerate() {
                                let pnode = var_base[cf] + k as u32;
                                flow(&mut s, pnode, *a);
                            }
                            if let Some(d) = dst {
                                s.join(var_node(fi, *d), ret_base + cf as u32);
                            }
                        }
                        Inst::Alloc { dst, site, .. } => {
                            let l = loc_node[&Loc::Heap(*site)];
                            let p = s.pointee_of(var_node(fi, *dst));
                            s.join(p, l);
                        }
                    }
                }
                if let Terminator::Ret(Some(v)) = &b.term {
                    flow(&mut s, ret_base + fi as u32, *v);
                }
            }
        }

        // freeze
        let n = s.uf.len();
        let mut rep = vec![0u32; n];
        for i in 0..n as u32 {
            rep[i as usize] = s.uf.find(i);
        }
        let mut pointee = vec![u32::MAX; n];
        for (&k, &v) in &s.pointee {
            let rk = rep[k as usize];
            pointee[rk as usize] = rep[v as usize];
        }
        let mut members: HashMap<ClassId, Vec<Loc>> = HashMap::new();
        for (&loc, &node) in &loc_node {
            members
                .entry(ClassId(rep[node as usize]))
                .or_default()
                .push(loc);
        }
        for v in members.values_mut() {
            v.sort();
        }

        let mut aa = AliasAnalysis {
            rep,
            pointee,
            var_base,
            loc_node,
            members,
            mods: vec![BTreeSet::new(); m.funcs.len()],
            refs: vec![BTreeSet::new(); m.funcs.len()],
        };
        aa.compute_modref(m);
        aa
    }

    fn compute_modref(&mut self, m: &Module) {
        // local sets
        for (fi, f) in m.funcs.iter().enumerate() {
            for b in &f.blocks {
                for inst in &b.insts {
                    match inst {
                        Inst::Load { base, .. } | Inst::CheckLoad { base, .. } => {
                            if let Some(c) = self.access_class(FuncId::from_index(fi), *base) {
                                self.refs[fi].insert(c);
                            }
                        }
                        Inst::Store { base, .. } => {
                            if let Some(c) = self.access_class(FuncId::from_index(fi), *base) {
                                self.mods[fi].insert(c);
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        // close over the call graph
        let mut changed = true;
        while changed {
            changed = false;
            for (fi, f) in m.funcs.iter().enumerate() {
                for b in &f.blocks {
                    for inst in &b.insts {
                        if let Inst::Call { callee, .. } = inst {
                            let ci = callee.index();
                            if ci == fi {
                                continue;
                            }
                            let callee_mods: Vec<_> = self.mods[ci].iter().copied().collect();
                            for c in callee_mods {
                                changed |= self.mods[fi].insert(c);
                            }
                            let callee_refs: Vec<_> = self.refs[ci].iter().copied().collect();
                            for c in callee_refs {
                                changed |= self.refs[fi].insert(c);
                            }
                        }
                    }
                }
            }
        }
    }

    fn node_of_var(&self, f: FuncId, v: VarId) -> u32 {
        self.var_base[f.index()] + v.0
    }

    /// The final class of one register's *value*.
    pub fn var_class(&self, f: FuncId, v: VarId) -> ClassId {
        ClassId(self.rep[self.node_of_var(f, v) as usize])
    }

    /// The final class of a LOC.
    pub fn loc_class(&self, loc: Loc) -> ClassId {
        ClassId(self.rep[self.loc_node[&loc] as usize])
    }

    /// The alias class a memory access with base operand `base` touches:
    /// the pointee class for register bases, the location's own class for
    /// direct global/slot bases. `None` for constant bases (unknown raw
    /// addresses never arise in well-formed programs).
    pub fn access_class(&self, f: FuncId, base: Operand) -> Option<ClassId> {
        match base {
            Operand::Var(p) => {
                let n = self.rep[self.node_of_var(f, p) as usize];
                let pt = self.pointee[n as usize];
                if pt == u32::MAX {
                    None
                } else {
                    Some(ClassId(self.rep[pt as usize]))
                }
            }
            Operand::GlobalAddr(g) => Some(self.loc_class(Loc::Global(g))),
            Operand::SlotAddr(s) => Some(self.loc_class(Loc::Slot(FuncSlot { func: f, slot: s }))),
            _ => None,
        }
    }

    /// LOC members of a class (empty slice if the class holds no named
    /// location — e.g. a class of pure scalars).
    pub fn locs_in_class(&self, c: ClassId) -> &[Loc] {
        self.members.get(&c).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The LOCs an access may touch, filtered by type-based alias analysis
    /// for accesses of type `ty`. For a direct access this is the single
    /// accessed location; for an indirect one, every TBAA-compatible LOC in
    /// the pointee class.
    pub fn may_access(&self, m: &Module, f: FuncId, base: Operand, ty: Ty) -> Vec<Loc> {
        match base {
            Operand::GlobalAddr(g) => vec![Loc::Global(g)],
            Operand::SlotAddr(s) => vec![Loc::Slot(FuncSlot { func: f, slot: s })],
            _ => match self.access_class(f, base) {
                Some(c) => self
                    .locs_in_class(c)
                    .iter()
                    .copied()
                    .filter(|l| l.tbaa_may_alias(m, ty))
                    .collect(),
                None => Vec::new(),
            },
        }
    }

    /// Whether two accesses may alias: their classes are equal and at least
    /// one type is TBAA-compatible with the other.
    pub fn may_alias(
        &self,
        f1: FuncId,
        base1: Operand,
        ty1: Ty,
        f2: FuncId,
        base2: Operand,
        ty2: Ty,
    ) -> bool {
        if !ty1.tbaa_may_alias(ty2) {
            return false;
        }
        match (self.access_class(f1, base1), self.access_class(f2, base2)) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }

    /// Classes function `f` may store to, including everything its callees
    /// may store to.
    pub fn func_mod(&self, f: FuncId) -> &BTreeSet<ClassId> {
        &self.mods[f.index()]
    }

    /// Classes function `f` may load from, including callees.
    pub fn func_ref(&self, f: FuncId) -> &BTreeSet<ClassId> {
        &self.refs[f.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specframe_ir::{BinOp, ModuleBuilder};

    #[test]
    fn distinct_globals_without_pointers_stay_separate() {
        let mut mb = ModuleBuilder::new();
        let ga = mb.global("a", 1, Ty::I64);
        let gb = mb.global("b", 1, Ty::I64);
        let f = mb.declare_func("f", &[], None);
        {
            let mut fb = mb.define(f);
            let x = fb.load(Operand::GlobalAddr(ga), 0, Ty::I64);
            fb.store(Operand::GlobalAddr(gb), 0, x.into(), Ty::I64);
            fb.ret(None);
        }
        let m = mb.finish();
        let aa = AliasAnalysis::analyze(&m);
        assert_ne!(aa.loc_class(Loc::Global(ga)), aa.loc_class(Loc::Global(gb)));
    }

    #[test]
    fn address_taken_global_aliases_pointer_deref() {
        // p = &a; load *p   =>  *p may access {a}, and may_alias(a, *p)
        let mut mb = ModuleBuilder::new();
        let ga = mb.global("a", 1, Ty::I64);
        let _gb = mb.global("b", 1, Ty::I64);
        let f = mb.declare_func("f", &[], Some(Ty::I64));
        let (p, m) = {
            let mut fb = mb.define(f);
            let p = fb.var("p", Ty::Ptr);
            fb.copy_to(p, Operand::GlobalAddr(ga));
            let x = fb.load(p.into(), 0, Ty::I64);
            fb.ret(Some(x.into()));
            (p, mb.finish())
        };
        let aa = AliasAnalysis::analyze(&m);
        let locs = aa.may_access(&m, FuncId(0), Operand::Var(p), Ty::I64);
        assert_eq!(locs, vec![Loc::Global(ga)]);
        assert!(aa.may_alias(
            FuncId(0),
            Operand::GlobalAddr(ga),
            Ty::I64,
            FuncId(0),
            Operand::Var(p),
            Ty::I64
        ));
    }

    #[test]
    fn two_pointers_to_same_object_share_class() {
        let mut mb = ModuleBuilder::new();
        let ga = mb.global("a", 4, Ty::I64);
        let f = mb.declare_func("f", &[], None);
        let (p, q, m) = {
            let mut fb = mb.define(f);
            let p = fb.var("p", Ty::Ptr);
            let q = fb.var("q", Ty::Ptr);
            fb.copy_to(p, Operand::GlobalAddr(ga));
            // q = p + 2 — pointer arithmetic keeps the class
            fb.bin_to(q, BinOp::Add, p.into(), 2.into());
            fb.store(q.into(), 0, 1.into(), Ty::I64);
            fb.ret(None);
            (p, q, mb.finish())
        };
        let aa = AliasAnalysis::analyze(&m);
        assert_eq!(
            aa.access_class(FuncId(0), Operand::Var(p)),
            aa.access_class(FuncId(0), Operand::Var(q))
        );
    }

    #[test]
    fn unrelated_heap_allocations_differ() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_func("f", &[], None);
        let (p, q, m) = {
            let mut fb = mb.define(f);
            let p = fb.alloc(8.into());
            let q = fb.alloc(8.into());
            fb.store(p.into(), 0, 1.into(), Ty::I64);
            fb.store(q.into(), 0, 2.into(), Ty::I64);
            fb.ret(None);
            (p, q, mb.finish())
        };
        let aa = AliasAnalysis::analyze(&m);
        assert_ne!(
            aa.access_class(FuncId(0), Operand::Var(p)),
            aa.access_class(FuncId(0), Operand::Var(q))
        );
    }

    #[test]
    fn store_through_pointer_merges_pointees() {
        // tbl holds pointers: *t = &a; later r = *t; *r touches a's class
        let mut mb = ModuleBuilder::new();
        let ga = mb.global("a", 1, Ty::I64);
        let tbl = mb.global("tbl", 1, Ty::Ptr);
        let f = mb.declare_func("f", &[], None);
        let (r, m) = {
            let mut fb = mb.define(f);
            fb.store(
                Operand::GlobalAddr(tbl),
                0,
                Operand::GlobalAddr(ga),
                Ty::Ptr,
            );
            let r = fb.load(Operand::GlobalAddr(tbl), 0, Ty::Ptr);
            fb.store(r.into(), 0, 7.into(), Ty::I64);
            fb.ret(None);
            (r, mb.finish())
        };
        let aa = AliasAnalysis::analyze(&m);
        let locs = aa.may_access(&m, FuncId(0), Operand::Var(r), Ty::I64);
        assert!(locs.contains(&Loc::Global(ga)), "{locs:?}");
    }

    #[test]
    fn tbaa_filters_may_access() {
        let mut mb = ModuleBuilder::new();
        let gi = mb.global("ints", 4, Ty::I64);
        let gf = mb.global("floats", 4, Ty::F64);
        let f = mb.declare_func("f", &[("sel", Ty::I64)], None);
        let (p, m) = {
            let mut fb = mb.define(f);
            let sel = fb.param(0);
            let p = fb.var("p", Ty::Ptr);
            let t = fb.block("t");
            let e = fb.block("e");
            let j = fb.block("j");
            fb.br(sel.into(), t, e);
            fb.switch_to(t);
            fb.copy_to(p, Operand::GlobalAddr(gi));
            fb.jmp(j);
            fb.switch_to(e);
            fb.copy_to(p, Operand::GlobalAddr(gf));
            fb.jmp(j);
            fb.switch_to(j);
            fb.load(p.into(), 0, Ty::F64);
            fb.ret(None);
            (p, mb.finish())
        };
        let aa = AliasAnalysis::analyze(&m);
        // class contains both, but an f64 access filters out the i64 global
        let locs = aa.may_access(&m, FuncId(0), Operand::Var(p), Ty::F64);
        assert_eq!(locs, vec![Loc::Global(gf)]);
        let locs_i = aa.may_access(&m, FuncId(0), Operand::Var(p), Ty::I64);
        assert_eq!(locs_i, vec![Loc::Global(gi)]);
    }

    #[test]
    fn callee_stores_show_in_caller_mod() {
        let mut mb = ModuleBuilder::new();
        let g = mb.global("g", 1, Ty::I64);
        let leaf = mb.declare_func("leaf", &[], None);
        {
            let mut fb = mb.define(leaf);
            fb.store(Operand::GlobalAddr(g), 0, 1.into(), Ty::I64);
            fb.ret(None);
        }
        let mid = mb.declare_func("mid", &[], None);
        {
            let mut fb = mb.define(mid);
            fb.call(leaf, &[]);
            fb.ret(None);
        }
        let top = mb.declare_func("top", &[], None);
        {
            let mut fb = mb.define(top);
            fb.call(mid, &[]);
            fb.ret(None);
        }
        let m = mb.finish();
        let aa = AliasAnalysis::analyze(&m);
        let gc = aa.loc_class(Loc::Global(g));
        assert!(aa.func_mod(leaf).contains(&gc));
        assert!(aa.func_mod(mid).contains(&gc));
        assert!(aa.func_mod(top).contains(&gc));
        assert!(aa.func_ref(top).is_empty());
    }

    #[test]
    fn param_passing_links_caller_arg_to_callee_deref() {
        // caller passes &g; callee stores through the param.
        let mut mb = ModuleBuilder::new();
        let g = mb.global("g", 1, Ty::I64);
        let callee = mb.declare_func("set", &[("p", Ty::Ptr)], None);
        {
            let mut fb = mb.define(callee);
            let p = fb.param(0);
            fb.store(p.into(), 0, 9.into(), Ty::I64);
            fb.ret(None);
        }
        let caller = mb.declare_func("main", &[], None);
        {
            let mut fb = mb.define(caller);
            fb.call(callee, &[Operand::GlobalAddr(g)]);
            fb.ret(None);
        }
        let m = mb.finish();
        let aa = AliasAnalysis::analyze(&m);
        let locs = aa.may_access(&m, callee, Operand::Var(VarId(0)), Ty::I64);
        assert_eq!(locs, vec![Loc::Global(g)]);
        // and the mod summary of main includes g's class
        assert!(aa.func_mod(caller).contains(&aa.loc_class(Loc::Global(g))));
    }

    #[test]
    fn return_value_propagates_points_to() {
        let mut mb = ModuleBuilder::new();
        let g = mb.global("g", 1, Ty::I64);
        let getp = mb.declare_func("getp", &[], Some(Ty::Ptr));
        {
            let mut fb = mb.define(getp);
            fb.ret(Some(Operand::GlobalAddr(g)));
        }
        let caller = mb.declare_func("main", &[], None);
        let (r, m) = {
            let mut fb = mb.define(caller);
            let r = fb.call(getp, &[]).unwrap();
            fb.store(r.into(), 0, 3.into(), Ty::I64);
            fb.ret(None);
            (r, mb.finish())
        };
        let aa = AliasAnalysis::analyze(&m);
        let locs = aa.may_access(&m, caller, Operand::Var(r), Ty::I64);
        assert_eq!(locs, vec![Loc::Global(g)]);
    }

    #[test]
    fn slot_address_taken_aliases() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_func("f", &[], Some(Ty::I64));
        let (sl, p, m) = {
            let mut fb = mb.define(f);
            let sl = fb.slot("x", 1, Ty::I64);
            let p = fb.var("p", Ty::Ptr);
            fb.copy_to(p, Operand::SlotAddr(sl));
            fb.store(p.into(), 0, 5.into(), Ty::I64);
            let v = fb.load(Operand::SlotAddr(sl), 0, Ty::I64);
            fb.ret(Some(v.into()));
            (sl, p, mb.finish())
        };
        let aa = AliasAnalysis::analyze(&m);
        let loc = Loc::Slot(FuncSlot { func: f, slot: sl });
        assert!(aa
            .may_access(&m, f, Operand::Var(p), Ty::I64)
            .contains(&loc));
        assert!(aa.may_alias(
            f,
            Operand::SlotAddr(sl),
            Ty::I64,
            f,
            Operand::Var(p),
            Ty::I64
        ));
    }
}
