//! # specframe-alias
//!
//! Compile-time alias information for the speculative SSA construction:
//!
//! * [`loc`] — **abstract memory locations** (LOCs): globals, stack slots
//!   and heap objects named by allocation site, exactly the naming scheme
//!   the paper's alias profiling uses (§3.2.1, citing Ghiya et al.);
//! * [`unionfind`] — the union-find substrate;
//! * [`steens`] — Steensgaard's equivalence-class alias analysis
//!   (*"Points-to analysis in almost linear time"*, POPL '96), the analysis
//!   the paper's Figure 4 names as the class generator for virtual-variable
//!   assignment, plus interprocedural mod/ref summaries for call χ/μ lists.
//!
//! Type-based alias analysis lives on [`specframe_ir::Ty::tbaa_may_alias`];
//! the χ/μ construction in `specframe-hssa` composes both filters.

pub mod loc;
pub mod steens;
pub mod unionfind;

pub use loc::{Loc, LocSet};
pub use steens::{AliasAnalysis, ClassId};
pub use unionfind::UnionFind;
