//! Property tests for the ALAT invariants, across policy geometries.
//!
//! Each property runs the same random operation sequence against every
//! geometry the fault policies can request (including the 0-entry
//! always-miss table and a degenerate 1×1 table) and checks:
//!
//! * occupancy never exceeds the configured entry count;
//! * a `check` hit is always *justified*: the same (register, address)
//!   pair was inserted and no invalidation of that address (nor an
//!   injected fault wiping the table) happened since — misses are always
//!   allowed, hits never lie;
//! * insertion is LRU-correct within a set: the table agrees exactly with
//!   an independent recency-list model (a hit in the model but not the
//!   table, or vice versa, fails).

use proptest::prelude::*;
use specframe_machine::alat::Alat;
use specframe_machine::Reg;

/// Geometries exercised by every property: the default, shrunken tables,
/// a direct-mapped table, a fully-associative one, a degenerate 1×1, the
/// always-miss 0-entry table, and an `entries < ways` corner.
const GEOMETRIES: &[(usize, usize)] = &[
    (32, 2),
    (16, 2),
    (8, 4),
    (8, 1),
    (4, 4),
    (1, 1),
    (0, 1),
    (3, 4),
];

/// Independent reference model: per-set recency lists (most recent last).
/// Insert appends (evicting the front when full), a check hit moves the
/// entry to the back — LRU without modelling ways/slots explicitly.
struct RecencyModel {
    sets: Vec<Vec<(u32, i64)>>,
    ways: usize,
}

impl RecencyModel {
    fn new(entries: usize, ways: usize) -> RecencyModel {
        let (nsets, ways) = if entries == 0 {
            (0, 1)
        } else if entries <= ways {
            (1, entries)
        } else {
            (entries / ways, ways)
        };
        RecencyModel {
            sets: vec![Vec::new(); nsets],
            ways,
        }
    }

    fn insert(&mut self, reg: u32, addr: i64) {
        if self.sets.is_empty() {
            return;
        }
        let n = self.sets.len();
        let set = &mut self.sets[reg as usize % n];
        set.retain(|&(r, _)| r != reg);
        if set.len() == self.ways {
            set.remove(0); // evict least recently used
        }
        set.push((reg, addr));
    }

    fn invalidate(&mut self, addr: i64) {
        for set in &mut self.sets {
            set.retain(|&(_, a)| a != addr);
        }
    }

    fn check(&mut self, reg: u32, addr: i64) -> bool {
        if self.sets.is_empty() {
            return false;
        }
        let n = self.sets.len();
        let set = &mut self.sets[reg as usize % n];
        match set.iter().position(|&(r, a)| r == reg && a == addr) {
            Some(i) => {
                let e = set.remove(i);
                set.push(e); // refresh recency
                true
            }
            None => false,
        }
    }

    fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

proptest! {
    /// The table never holds more than `entries` live entries, for any
    /// geometry and any operation mix including injected faults.
    #[test]
    fn occupancy_never_exceeds_entries(
        ops in proptest::collection::vec((0u8..5, 0u32..12, 0i64..6), 0..300),
    ) {
        for &(entries, ways) in GEOMETRIES {
            let mut a = Alat::with_geometry(entries, ways);
            for &(kind, reg, addr) in &ops {
                match kind {
                    0 | 1 => a.insert(Reg(reg), addr),
                    2 => a.invalidate(addr),
                    3 => a.kill_one(u64::from(reg) * 7 + addr as u64),
                    _ => {
                        a.check(Reg(reg), addr);
                    }
                }
                prop_assert!(
                    a.occupancy() <= entries,
                    "geometry ({entries},{ways}): occupancy {} > {entries}",
                    a.occupancy()
                );
                prop_assert!(a.capacity() <= entries);
            }
        }
    }

    /// A check hit implies the pair was inserted with no intervening
    /// invalidation of that address and no table-wiping fault since —
    /// under faults the table may miss arbitrarily but may never lie.
    #[test]
    fn check_hit_implies_no_intervening_invalidate(
        ops in proptest::collection::vec((0u8..6, 0u32..12, 0i64..6), 0..300),
    ) {
        for &(entries, ways) in GEOMETRIES {
            let mut a = Alat::with_geometry(entries, ways);
            // live (reg -> addr) pairs ignoring capacity: a superset of
            // what the table may legitimately hold
            let mut live: std::collections::HashMap<u32, i64> = Default::default();
            for &(kind, reg, addr) in &ops {
                match kind {
                    0 | 1 => {
                        a.insert(Reg(reg), addr);
                        live.insert(reg, addr);
                    }
                    2 => {
                        a.invalidate(addr);
                        live.retain(|_, &mut v| v != addr);
                    }
                    3 => a.kill_one(u64::from(reg) * 31 + addr as u64),
                    4 => {
                        a.flash_clear();
                        live.clear();
                    }
                    _ => {
                        if a.check(Reg(reg), addr) {
                            prop_assert_eq!(
                                live.get(&reg),
                                Some(&addr),
                                "geometry ({},{}): unjustified hit for r{} @ {}",
                                entries, ways, reg, addr
                            );
                        }
                    }
                }
            }
        }
    }

    /// Without injected faults, the table agrees *exactly* with an
    /// independent per-set recency-list model — in particular the LRU
    /// entry of a full set (and only it) is the one an insert evicts,
    /// and a check hit refreshes recency.
    #[test]
    fn insert_is_lru_correct_within_a_set(
        ops in proptest::collection::vec((0u8..5, 0u32..12, 0i64..6), 0..300),
    ) {
        for &(entries, ways) in GEOMETRIES {
            let mut a = Alat::with_geometry(entries, ways);
            let mut model = RecencyModel::new(entries, ways);
            for &(kind, reg, addr) in &ops {
                match kind {
                    0 | 1 => {
                        a.insert(Reg(reg), addr);
                        model.insert(reg, addr);
                    }
                    2 => {
                        a.invalidate(addr);
                        model.invalidate(addr);
                    }
                    _ => {
                        let got = a.check(Reg(reg), addr);
                        let want = model.check(reg, addr);
                        prop_assert_eq!(
                            got, want,
                            "geometry ({},{}): table {} but LRU model {} for r{} @ {}",
                            entries, ways,
                            if got { "hit" } else { "missed" },
                            if want { "hits" } else { "misses" },
                            reg, addr
                        );
                    }
                }
                prop_assert_eq!(a.occupancy(), model.occupancy());
            }
        }
    }
}
