//! The Advanced Load Address Table.
//!
//! Itanium's ALAT tracks advanced loads so later check loads can tell
//! whether an intervening store touched the loaded address. We model the
//! documented structure: **32 entries, 2-way set-associative, indexed by
//! the target register number**. Each entry records the register, the word
//! address and the access width (one word here — the IR is word-oriented).
//!
//! Semantics:
//! * `insert(reg, addr)` — executed by `ld.a`/`ld.sa`; evicts the other way
//!   of the set if both are occupied (LRU within the 2-way set);
//! * `invalidate(addr)` — executed by every store; removes all entries
//!   whose address matches (any register);
//! * `check(reg, addr)` — executed by `ld.c`: hit iff an entry for this
//!   register with this address is present; on miss the simulator re-loads
//!   and re-inserts.

use crate::isa::Reg;

/// Number of entries.
pub const ALAT_ENTRIES: usize = 32;
/// Associativity.
pub const ALAT_WAYS: usize = 2;
/// Number of sets.
pub const ALAT_SETS: usize = ALAT_ENTRIES / ALAT_WAYS;

#[derive(Clone, Copy, Debug, PartialEq)]
struct Entry {
    reg: Reg,
    addr: i64,
    lru: u64,
}

/// The ALAT model.
#[derive(Debug, Clone)]
pub struct Alat {
    sets: Vec<[Option<Entry>; ALAT_WAYS]>,
    tick: u64,
    /// Entries inserted over the run.
    pub inserts: u64,
    /// Entries invalidated by stores.
    pub store_invalidations: u64,
    /// Entries lost to capacity/conflict eviction.
    pub evictions: u64,
}

impl Default for Alat {
    fn default() -> Self {
        Alat::new()
    }
}

impl Alat {
    /// An empty ALAT.
    pub fn new() -> Alat {
        Alat {
            sets: vec![[None; ALAT_WAYS]; ALAT_SETS],
            tick: 0,
            inserts: 0,
            store_invalidations: 0,
            evictions: 0,
        }
    }

    #[inline]
    fn set_of(reg: Reg) -> usize {
        (reg.0 as usize) % ALAT_SETS
    }

    /// Allocates (or refreshes) the entry for `reg` covering `addr`.
    pub fn insert(&mut self, reg: Reg, addr: i64) {
        self.tick += 1;
        self.inserts += 1;
        let set = &mut self.sets[Self::set_of(reg)];
        // same register: overwrite in place
        if let Some(e) = set.iter_mut().flatten().find(|e| e.reg == reg) {
            e.addr = addr;
            e.lru = self.tick;
            return;
        }
        // free way?
        if let Some(slot) = set.iter_mut().find(|s| s.is_none()) {
            *slot = Some(Entry {
                reg,
                addr,
                lru: self.tick,
            });
            return;
        }
        // evict LRU way
        self.evictions += 1;
        let victim = set
            .iter_mut()
            .min_by_key(|s| s.as_ref().map(|e| e.lru).unwrap_or(0))
            .expect("nonempty set");
        *victim = Some(Entry {
            reg,
            addr,
            lru: self.tick,
        });
    }

    /// A store to `addr` invalidates every matching entry.
    pub fn invalidate(&mut self, addr: i64) {
        for set in &mut self.sets {
            for slot in set.iter_mut() {
                if let Some(e) = slot {
                    if e.addr == addr {
                        *slot = None;
                        self.store_invalidations += 1;
                    }
                }
            }
        }
    }

    /// `ld.c` lookup: does `reg` still cover `addr`?
    pub fn check(&mut self, reg: Reg, addr: i64) -> bool {
        self.tick += 1;
        let set = &mut self.sets[Self::set_of(reg)];
        match set
            .iter_mut()
            .flatten()
            .find(|e| e.reg == reg && e.addr == addr)
        {
            Some(e) => {
                e.lru = self.tick;
                true
            }
            None => false,
        }
    }

    /// Drops everything (context switch / call boundary is *not* modeled —
    /// IA-64 preserves the ALAT across calls, and so do we; this is for
    /// tests).
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            *set = [None; ALAT_WAYS];
        }
    }

    /// Number of live entries.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().flatten().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_check_hits() {
        let mut a = Alat::new();
        a.insert(Reg(3), 100);
        assert!(a.check(Reg(3), 100));
        assert!(!a.check(Reg(3), 101), "different address misses");
        assert!(!a.check(Reg(4), 100), "different register misses");
    }

    #[test]
    fn store_invalidates_matching_address() {
        let mut a = Alat::new();
        a.insert(Reg(1), 50);
        a.insert(Reg(2), 60);
        a.invalidate(50);
        assert!(!a.check(Reg(1), 50));
        assert!(a.check(Reg(2), 60));
        assert_eq!(a.store_invalidations, 1);
    }

    #[test]
    fn non_aliasing_store_leaves_entry() {
        let mut a = Alat::new();
        a.insert(Reg(1), 50);
        a.invalidate(51);
        assert!(a.check(Reg(1), 50));
    }

    #[test]
    fn set_conflict_evicts_lru() {
        let mut a = Alat::new();
        // three registers in the same set (stride = ALAT_SETS)
        let r1 = Reg(1);
        let r2 = Reg(1 + ALAT_SETS as u32);
        let r3 = Reg(1 + 2 * ALAT_SETS as u32);
        a.insert(r1, 10);
        a.insert(r2, 20);
        a.insert(r3, 30); // evicts r1 (LRU)
        assert_eq!(a.evictions, 1);
        assert!(!a.check(r1, 10));
        assert!(a.check(r2, 20));
        assert!(a.check(r3, 30));
    }

    #[test]
    fn reinsert_same_register_updates_address() {
        let mut a = Alat::new();
        a.insert(Reg(7), 10);
        a.insert(Reg(7), 20);
        assert!(!a.check(Reg(7), 10));
        assert!(a.check(Reg(7), 20));
        assert_eq!(a.occupancy(), 1);
    }

    #[test]
    fn check_refreshes_lru() {
        let mut a = Alat::new();
        let r1 = Reg(2);
        let r2 = Reg(2 + ALAT_SETS as u32);
        let r3 = Reg(2 + 2 * ALAT_SETS as u32);
        a.insert(r1, 10);
        a.insert(r2, 20);
        a.check(r1, 10); // refresh r1; r2 becomes LRU
        a.insert(r3, 30);
        assert!(a.check(r1, 10), "r1 refreshed, must survive");
        assert!(!a.check(r2, 20), "r2 was LRU, evicted");
    }

    #[cfg(test)]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// After any operation sequence, occupancy never exceeds the
            /// capacity and a check hit implies a preceding insert of the
            /// same (reg, addr) with no intervening invalidation.
            #[test]
            fn capacity_and_soundness(ops in proptest::collection::vec(
                (0u8..3, 0u32..8, 0i64..8), 0..200)) {
                let mut a = Alat::new();
                // model: map (reg) -> addr of live entry, ignoring capacity
                let mut model: std::collections::HashMap<u32, i64> =
                    Default::default();
                for (kind, reg, addr) in ops {
                    match kind {
                        0 => {
                            a.insert(Reg(reg), addr);
                            model.insert(reg, addr);
                        }
                        1 => {
                            a.invalidate(addr);
                            model.retain(|_, &mut v| v != addr);
                        }
                        _ => {
                            let hit = a.check(Reg(reg), addr);
                            // the real ALAT may miss due to capacity, but a
                            // hit must be justified by the model
                            if hit {
                                prop_assert_eq!(model.get(&reg), Some(&addr));
                            }
                        }
                    }
                    prop_assert!(a.occupancy() <= ALAT_ENTRIES);
                }
            }
        }
    }
}
