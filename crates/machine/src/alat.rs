//! The Advanced Load Address Table.
//!
//! Itanium's ALAT tracks advanced loads so later check loads can tell
//! whether an intervening store touched the loaded address. The default
//! model is the documented structure: **32 entries, 2-way set-associative,
//! indexed by the target register number**. Each entry records the
//! register, the word address and the access width (one word here — the IR
//! is word-oriented).
//!
//! The architecture, however, permits *any* implementation to drop entries
//! at any time (smaller tables, context switches, capacity pressure), and
//! generated code must stay correct under every such behavior. The table is
//! therefore **parameterized by geometry** — any entry/way count down to a
//! 0-entry always-miss table — and exposes the two fault-injection
//! operations adversarial policies need: [`Alat::kill_one`] (drop one
//! arbitrary live entry) and [`Alat::flash_clear`] (drop everything, the
//! context-switch model). See [`crate::policy`] for the policies that
//! drive them.
//!
//! Semantics:
//! * `insert(reg, addr)` — executed by `ld.a`/`ld.sa`; evicts the other way
//!   of the set if all are occupied (LRU within the set);
//! * `invalidate(addr)` — executed by every store; removes all entries
//!   whose address matches (any register);
//! * `check(reg, addr)` — executed by `ld.c`: hit iff an entry for this
//!   register with this address is present; on miss the simulator re-loads
//!   and re-inserts.

use crate::isa::Reg;

/// Number of entries of the default geometry.
pub const ALAT_ENTRIES: usize = 32;
/// Associativity of the default geometry.
pub const ALAT_WAYS: usize = 2;
/// Number of sets of the default geometry.
pub const ALAT_SETS: usize = ALAT_ENTRIES / ALAT_WAYS;

#[derive(Clone, Copy, Debug, PartialEq)]
struct Entry {
    reg: Reg,
    addr: i64,
    lru: u64,
}

/// The ALAT model.
#[derive(Debug, Clone)]
pub struct Alat {
    /// `sets.len() × ways` slots; empty for a 0-entry table.
    sets: Vec<Vec<Option<Entry>>>,
    ways: usize,
    tick: u64,
    /// Entries inserted over the run.
    pub inserts: u64,
    /// Entries invalidated by stores.
    pub store_invalidations: u64,
    /// Entries lost to capacity/conflict eviction.
    pub evictions: u64,
    /// Entries dropped by fault injection ([`Alat::kill_one`] and
    /// [`Alat::flash_clear`]).
    pub fault_kills: u64,
    /// [`Alat::flash_clear`] invocations.
    pub flash_clears: u64,
}

impl Default for Alat {
    fn default() -> Self {
        Alat::new()
    }
}

impl Alat {
    /// An empty ALAT with the default IA-64 geometry (32 entries, 2-way).
    pub fn new() -> Alat {
        Alat::with_geometry(ALAT_ENTRIES, ALAT_WAYS)
    }

    /// An empty ALAT with `entries` total slots organised `ways`-way
    /// set-associatively. `entries == 0` builds the always-miss table every
    /// IA-64 implementation is allowed to be. When `entries < ways` the
    /// table degrades to a single `entries`-way set.
    pub fn with_geometry(entries: usize, ways: usize) -> Alat {
        let (nsets, ways) = if entries == 0 || ways == 0 {
            (0, ways.max(1))
        } else if entries <= ways {
            (1, entries)
        } else {
            (entries / ways, ways)
        };
        Alat {
            sets: vec![vec![None; ways]; nsets],
            ways,
            tick: 0,
            inserts: 0,
            store_invalidations: 0,
            evictions: 0,
            fault_kills: 0,
            flash_clears: 0,
        }
    }

    /// Total slot count of this geometry (0 for the always-miss table).
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }

    #[inline]
    fn set_of(&self, reg: Reg) -> usize {
        (reg.0 as usize) % self.sets.len()
    }

    /// Allocates (or refreshes) the entry for `reg` covering `addr`.
    pub fn insert(&mut self, reg: Reg, addr: i64) {
        self.tick += 1;
        self.inserts += 1;
        if self.sets.is_empty() {
            // 0-entry table: the insert retires but nothing is tracked
            return;
        }
        let set_idx = self.set_of(reg);
        let tick = self.tick;
        let set = &mut self.sets[set_idx];
        // same register: overwrite in place
        if let Some(e) = set.iter_mut().flatten().find(|e| e.reg == reg) {
            e.addr = addr;
            e.lru = tick;
            return;
        }
        // free way?
        if let Some(slot) = set.iter_mut().find(|s| s.is_none()) {
            *slot = Some(Entry {
                reg,
                addr,
                lru: tick,
            });
            return;
        }
        // evict LRU way
        self.evictions += 1;
        let victim = set
            .iter_mut()
            .min_by_key(|s| s.as_ref().map(|e| e.lru).unwrap_or(0))
            .expect("nonempty set");
        *victim = Some(Entry {
            reg,
            addr,
            lru: tick,
        });
    }

    /// A store to `addr` invalidates every matching entry.
    pub fn invalidate(&mut self, addr: i64) {
        for set in &mut self.sets {
            for slot in set.iter_mut() {
                if let Some(e) = slot {
                    if e.addr == addr {
                        *slot = None;
                        self.store_invalidations += 1;
                    }
                }
            }
        }
    }

    /// `ld.c` lookup: does `reg` still cover `addr`?
    pub fn check(&mut self, reg: Reg, addr: i64) -> bool {
        self.tick += 1;
        if self.sets.is_empty() {
            return false;
        }
        let set_idx = self.set_of(reg);
        let tick = self.tick;
        match self.sets[set_idx]
            .iter_mut()
            .flatten()
            .find(|e| e.reg == reg && e.addr == addr)
        {
            Some(e) => {
                e.lru = tick;
                true
            }
            None => false,
        }
    }

    /// Fault injection: drops the `lottery % occupancy`-th live entry (in
    /// set/way order). No-op on an empty table. The architecture permits
    /// this at any time, so correct code may never rely on an entry
    /// surviving.
    pub fn kill_one(&mut self, lottery: u64) {
        let live = self.occupancy();
        if live == 0 {
            return;
        }
        let target = (lottery % live as u64) as usize;
        let slot = self
            .sets
            .iter_mut()
            .flat_map(|s| s.iter_mut())
            .filter(|s| s.is_some())
            .nth(target)
            .expect("occupancy counted live slots");
        *slot = None;
        self.fault_kills += 1;
    }

    /// Fault injection: drops every entry (the context-switch model —
    /// a real OS invalidates the whole ALAT when it switches address
    /// spaces).
    pub fn flash_clear(&mut self) {
        self.flash_clears += 1;
        for set in &mut self.sets {
            for slot in set.iter_mut() {
                if slot.take().is_some() {
                    self.fault_kills += 1;
                }
            }
        }
    }

    /// Drops everything without counting it as an injected fault (tests).
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            for slot in set.iter_mut() {
                *slot = None;
            }
        }
    }

    /// Number of live entries.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().flatten().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_check_hits() {
        let mut a = Alat::new();
        a.insert(Reg(3), 100);
        assert!(a.check(Reg(3), 100));
        assert!(!a.check(Reg(3), 101), "different address misses");
        assert!(!a.check(Reg(4), 100), "different register misses");
    }

    #[test]
    fn store_invalidates_matching_address() {
        let mut a = Alat::new();
        a.insert(Reg(1), 50);
        a.insert(Reg(2), 60);
        a.invalidate(50);
        assert!(!a.check(Reg(1), 50));
        assert!(a.check(Reg(2), 60));
        assert_eq!(a.store_invalidations, 1);
    }

    #[test]
    fn non_aliasing_store_leaves_entry() {
        let mut a = Alat::new();
        a.insert(Reg(1), 50);
        a.invalidate(51);
        assert!(a.check(Reg(1), 50));
    }

    #[test]
    fn set_conflict_evicts_lru() {
        let mut a = Alat::new();
        // three registers in the same set (stride = ALAT_SETS)
        let r1 = Reg(1);
        let r2 = Reg(1 + ALAT_SETS as u32);
        let r3 = Reg(1 + 2 * ALAT_SETS as u32);
        a.insert(r1, 10);
        a.insert(r2, 20);
        a.insert(r3, 30); // evicts r1 (LRU)
        assert_eq!(a.evictions, 1);
        assert!(!a.check(r1, 10));
        assert!(a.check(r2, 20));
        assert!(a.check(r3, 30));
    }

    #[test]
    fn reinsert_same_register_updates_address() {
        let mut a = Alat::new();
        a.insert(Reg(7), 10);
        a.insert(Reg(7), 20);
        assert!(!a.check(Reg(7), 10));
        assert!(a.check(Reg(7), 20));
        assert_eq!(a.occupancy(), 1);
    }

    #[test]
    fn check_refreshes_lru() {
        let mut a = Alat::new();
        let r1 = Reg(2);
        let r2 = Reg(2 + ALAT_SETS as u32);
        let r3 = Reg(2 + 2 * ALAT_SETS as u32);
        a.insert(r1, 10);
        a.insert(r2, 20);
        a.check(r1, 10); // refresh r1; r2 becomes LRU
        a.insert(r3, 30);
        assert!(a.check(r1, 10), "r1 refreshed, must survive");
        assert!(!a.check(r2, 20), "r2 was LRU, evicted");
    }

    #[test]
    fn zero_entry_table_always_misses() {
        let mut a = Alat::with_geometry(0, 2);
        assert_eq!(a.capacity(), 0);
        a.insert(Reg(1), 10);
        assert_eq!(a.inserts, 1);
        assert_eq!(a.occupancy(), 0);
        assert!(!a.check(Reg(1), 10));
        a.invalidate(10); // no-op, no panic
        a.kill_one(7);
        a.flash_clear();
        assert_eq!(a.fault_kills, 0);
    }

    #[test]
    fn tiny_geometries_bound_occupancy() {
        for (entries, ways) in [(1, 1), (2, 2), (4, 2), (3, 4), (8, 1)] {
            let mut a = Alat::with_geometry(entries, ways);
            for r in 0..64u32 {
                a.insert(Reg(r), i64::from(r));
                assert!(
                    a.occupancy() <= a.capacity(),
                    "({entries},{ways}): occupancy {} > capacity {}",
                    a.occupancy(),
                    a.capacity()
                );
            }
            assert!(a.capacity() <= entries.max(1));
        }
    }

    #[test]
    fn kill_one_drops_exactly_one_live_entry() {
        let mut a = Alat::new();
        a.insert(Reg(1), 10);
        a.insert(Reg(2), 20);
        a.insert(Reg(3), 30);
        a.kill_one(1);
        assert_eq!(a.occupancy(), 2);
        assert_eq!(a.fault_kills, 1);
        // killed entries must miss; survivors must still hit
        let hits = [(Reg(1), 10), (Reg(2), 20), (Reg(3), 30)]
            .into_iter()
            .filter(|&(r, ad)| a.check(r, ad))
            .count();
        assert_eq!(hits, 2);
    }

    #[test]
    fn flash_clear_counts_kills() {
        let mut a = Alat::new();
        a.insert(Reg(1), 10);
        a.insert(Reg(2), 20);
        a.flash_clear();
        assert_eq!(a.occupancy(), 0);
        assert_eq!(a.fault_kills, 2);
        assert_eq!(a.flash_clears, 1);
        assert!(!a.check(Reg(1), 10));
    }

    #[cfg(test)]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// After any operation sequence, occupancy never exceeds the
            /// capacity and a check hit implies a preceding insert of the
            /// same (reg, addr) with no intervening invalidation.
            #[test]
            fn capacity_and_soundness(ops in proptest::collection::vec(
                (0u8..3, 0u32..8, 0i64..8), 0..200)) {
                let mut a = Alat::new();
                // model: map (reg) -> addr of live entry, ignoring capacity
                let mut model: std::collections::HashMap<u32, i64> =
                    Default::default();
                for (kind, reg, addr) in ops {
                    match kind {
                        0 => {
                            a.insert(Reg(reg), addr);
                            model.insert(reg, addr);
                        }
                        1 => {
                            a.invalidate(addr);
                            model.retain(|_, &mut v| v != addr);
                        }
                        _ => {
                            let hit = a.check(Reg(reg), addr);
                            // the real ALAT may miss due to capacity, but a
                            // hit must be justified by the model
                            if hit {
                                prop_assert_eq!(model.get(&reg), Some(&addr));
                            }
                        }
                    }
                    prop_assert!(a.occupancy() <= ALAT_ENTRIES);
                }
            }
        }
    }
}
