//! The latency model.
//!
//! The load latencies are the ones the paper quotes for Itanium: *"an
//! integer load has a minimal latency of 2 cycles (L1 Dcache hit on
//! Itanium), and a floating-point load has a minimal latency of 9 cycles
//! (L2 Dcache hit), and a successful check (ld.c or ldfd.c) cost 0
//! cycles"*. Everything else is a conventional in-order single-issue
//! approximation.

use specframe_ir::Ty;

/// Cycle costs for the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// ALU / move / compare.
    pub alu: u64,
    /// Integer or pointer load (L1 hit).
    pub int_load: u64,
    /// Floating-point load (L2 hit — FP loads bypass L1 on Itanium).
    pub fp_load: u64,
    /// Store.
    pub store: u64,
    /// Successful check (`ld.c` hit / NaT check pass).
    pub check_ok: u64,
    /// Extra penalty on a failed check, **on top of** the re-load latency
    /// (pipeline recovery).
    pub check_fail_penalty: u64,
    /// Branch (taken or not).
    pub branch: u64,
    /// Call/return overhead, added once per call.
    pub call_overhead: u64,
    /// Heap allocation service.
    pub alloc: u64,
    /// Speculation barrier (`MInst::Fence`): the stall waiting for every
    /// in-flight advanced load to resolve.
    pub fence: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            alu: 1,
            int_load: 2,
            fp_load: 9,
            store: 1,
            check_ok: 0,
            check_fail_penalty: 8,
            branch: 1,
            call_overhead: 5,
            alloc: 20,
            fence: 3,
        }
    }
}

impl CostModel {
    /// Latency of a load of type `ty`.
    #[inline]
    pub fn load(&self, ty: Ty) -> u64 {
        if ty.is_float() {
            self.fp_load
        } else {
            self.int_load
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_latencies() {
        let c = CostModel::default();
        assert_eq!(c.load(Ty::I64), 2);
        assert_eq!(c.load(Ty::Ptr), 2);
        assert_eq!(c.load(Ty::F64), 9);
        assert_eq!(c.check_ok, 0);
    }
}
