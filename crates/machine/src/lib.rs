//! # specframe-machine
//!
//! The EPIC-like execution target: the stand-in for the paper's 733 MHz
//! Itanium (HP i2000). It provides
//!
//! * [`isa`] — a flat, label-resolved instruction set with the IA-64
//!   speculation primitives: `ld.a` (advanced load, allocates an ALAT
//!   entry), `ld.s`/`ld.sa` (control-speculative load, deferring faults to
//!   NaT), `ld.c` (ALAT check load) and NaT checks;
//! * [`alat`] — the **Advanced Load Address Table**: 32 entries, 2-way
//!   set-associative, indexed by register number, invalidated by
//!   overlapping stores — the hardware structure the paper's data
//!   speculation relies on;
//! * [`costs`] — the latency model, using the numbers the paper quotes: an
//!   integer load hits L1 in 2 cycles, a floating-point load hits L2 in 9
//!   cycles (Itanium FP loads bypass L1), a successful check costs 0;
//! * [`sim`] — a cycle-approximate simulator with `pfmon`-style counters
//!   (retired loads, check loads, failed checks, CPU cycles, data-access
//!   cycles).
//!
//! The simulator is *cycle-approximate*: it exposes every load's full
//! latency (single-issue, no overlap). Absolute numbers therefore differ
//! from real Itanium bundles, but the quantities the paper's figures
//! compare — dynamic loads removed, check ratio, mis-speculation ratio,
//! relative cycle reduction — are preserved, because all configurations
//! run under the same model.

pub mod alat;
pub mod audit;
pub mod costs;
pub mod isa;
pub mod leaks;
pub mod policy;
pub mod sim;
pub mod target;

pub use alat::Alat;
pub use audit::{audit_func, audit_program, check_pairs, AuditError, AuditStats};
pub use costs::CostModel;
pub use isa::{render_mfunc, render_mprogram, ChkKind, LdKind};
pub use isa::{Label, MFunc, MInst, MOperand, MProgram, Reg};
pub use leaks::{
    construct_leak_witness, construct_leak_witness_on, fence_func, fence_program, leak_audit_func,
    leak_audit_program, leak_check_pairs, witness_leaks, witness_leaks_on, LeakSite, LeakWitness,
};
pub use policy::{fault_matrix, parse_fault_policy, AlatGeometry, AlatPolicy, FaultAction};
pub use sim::{
    run_machine, run_machine_on, run_machine_taint, run_machine_taint_on, run_machine_with_policy,
    run_machine_with_policy_on, Counters, LeakEvent, SimError, Simulator, SinkClass, TaintReport,
};
pub use target::{EpicTarget, SpecFrame, SpecTarget, SwrTarget, TargetId};
