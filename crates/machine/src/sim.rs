//! The cycle-approximate EPIC simulator with `pfmon`-style counters.

use crate::alat::Alat;
use crate::costs::CostModel;
use crate::isa::{ChkKind, LdKind, MFunc, MInst, MOperand, MProgram};
use crate::policy::{AlatPolicy, Deterministic, FaultAction};
use crate::target::{SpecTarget, TargetId};
use specframe_ir::{BinOp, Ty, UnOp, Value};

/// Words reserved for the stack region (matches the interpreter layout).
pub const STACK_WORDS: i64 = 1 << 20;
/// Hard memory cap (words).
pub const MEM_CAP: i64 = 1 << 28;
/// Maximum call depth.
pub const MAX_DEPTH: usize = 512;

/// `pfmon`-style hardware counters.
///
/// The paper's figures map onto these as:
/// * Figure 10 "reduction of loads" — `loads_retired` (plain + advanced +
///   speculative loads; successful checks do not access memory);
/// * Figure 10 "speedup" — `cycles` ratios;
/// * Figure 11 "check loads / total loads retired" —
///   `check_loads / (loads_retired + check_loads)`;
/// * Figure 11 "mis-speculation ratio" — `failed_checks / check_loads`;
/// * the §5.2 RSE discussion — `promoted_regs` as the pressure proxy.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counters {
    /// Instructions retired.
    pub insts: u64,
    /// Total cycles.
    pub cycles: u64,
    /// Cycles attributable to data access (load latencies, failed checks).
    pub data_access_cycles: u64,
    /// Memory-accessing loads retired (`ld`, `ld.a`, `ld.sa`).
    pub loads_retired: u64,
    /// Integer/pointer loads among `loads_retired`.
    pub int_loads: u64,
    /// Floating-point loads among `loads_retired`.
    pub fp_loads: u64,
    /// Check loads retired (`ld.c` and NaT checks).
    pub check_loads: u64,
    /// Checks that failed and re-loaded.
    pub failed_checks: u64,
    /// Stores retired.
    pub stores: u64,
    /// Branches retired.
    pub branches: u64,
    /// Calls executed.
    pub calls: u64,
    /// ALAT allocations.
    pub alat_inserts: u64,
    /// ALAT entries killed by stores.
    pub alat_store_invalidations: u64,
    /// ALAT conflict evictions.
    pub alat_evictions: u64,
    /// ALAT entries dropped by the fault policy (random kills plus entries
    /// lost to flash clears).
    pub alat_fault_kills: u64,
    /// Whole-table invalidations injected by the fault policy (the
    /// context-switch model).
    pub alat_flash_clears: u64,
    /// Maximum number of promoted-temporary registers live in any single
    /// frame (register-pressure proxy for the paper's RSE discussion).
    pub promoted_regs: u64,
    /// Speculation barriers retired (`MInst::Fence`).
    pub fences_retired: u64,
    /// Taint mode: loads whose value came from a secret-marked address.
    pub taint_loads: u64,
    /// Taint mode: dynamic flows of a potentially-misspeculated value into
    /// an address computation (load/store/check base) inside its window.
    pub leak_addr_events: u64,
    /// Taint mode: dynamic flows of a potentially-misspeculated value into
    /// a branch condition inside its window.
    pub leak_branch_events: u64,
    /// Taint mode: leak events whose flowing value was also secret-tainted.
    pub leak_secret_events: u64,
}

impl Counters {
    /// Total retired loads including checks (the paper's Figure 11
    /// denominator).
    pub fn total_loads_retired(&self) -> u64 {
        self.loads_retired + self.check_loads
    }

    /// Fraction of checks among all retired loads.
    pub fn check_ratio(&self) -> f64 {
        let t = self.total_loads_retired();
        if t == 0 {
            0.0
        } else {
            self.check_loads as f64 / t as f64
        }
    }

    /// Fraction of checks that failed.
    pub fn mis_speculation_ratio(&self) -> f64 {
        if self.check_loads == 0 {
            0.0
        } else {
            self.failed_checks as f64 / self.check_loads as f64
        }
    }
}

/// A machine-level execution failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Fuel exhausted.
    OutOfFuel,
    /// Unmapped or out-of-range non-speculative access.
    BadAddress(i64),
    /// Integer division by zero.
    DivByZero,
    /// Call depth exceeded.
    StackOverflow,
    /// NaT consumed by a non-check instruction.
    NatConsumed,
    /// Unknown entry function.
    NoSuchFunction(String),
    /// Wrong entry arity.
    BadEntryArgs,
    /// Stack region exhausted.
    StackExhausted,
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for SimError {}

/// Sink class of a speculative leak: what kind of observable computation
/// the potentially-misspeculated value flowed into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SinkClass {
    /// Address computation: the base of a load, store or check.
    Address,
    /// Branch condition.
    Branch,
}

impl core::fmt::Display for SinkClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SinkClass::Address => write!(f, "address"),
            SinkClass::Branch => write!(f, "branch"),
        }
    }
}

/// One taint-to-sink flow observed by the taint-mode simulator: inside the
/// speculation window of the advanced load whose destination is `origin`,
/// a value derived from it reached the sink at instruction `at`.
/// Site-deduplicated per (function, sink instruction); the dynamic event
/// counts live in [`Counters`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeakEvent {
    /// Function the sink is in.
    pub func: String,
    /// Instruction index of the sink within the function.
    pub at: usize,
    /// Destination register of the speculative load whose window was open.
    pub origin: u32,
    /// What the value flowed into.
    pub sink: SinkClass,
    /// Whether the flowing value was also secret-tainted.
    pub secret: bool,
}

/// Per-register taint shadow: the set of open speculation-window origins
/// (destination registers of unchecked `ld.a`/`ld.sa`) whose value may
/// have flowed here, plus a secret bit for `--taint-secret` data.
#[derive(Debug, Clone, Default)]
struct TaintCell {
    secret: bool,
    win: std::collections::BTreeSet<u32>,
}

/// Taint-mode bookkeeping (present only when taint tracking is enabled).
struct TaintState {
    /// Word addresses whose contents are secret.
    secret_mem: std::collections::BTreeSet<i64>,
    /// Site-deduplicated leak events.
    events: Vec<LeakEvent>,
    seen: std::collections::BTreeSet<(String, usize)>,
    /// First dynamic execution of each speculative load:
    /// `(function, instruction index, Counters::insts at execution)` —
    /// the raw material for the adversarial eviction constructor.
    spec_trace: Vec<(String, usize, u64)>,
    traced: std::collections::BTreeSet<(String, usize)>,
    /// Secret bit of the value the innermost returning callee produced.
    ret_secret: bool,
}

/// Everything a taint-mode run produces.
#[derive(Debug)]
pub struct TaintReport {
    /// Architectural result — must equal the untainted run's bit for bit.
    pub result: Option<Value>,
    /// Counters including the taint/leak/fence rows.
    pub counters: Counters,
    /// Site-deduplicated taint-to-sink events.
    pub events: Vec<LeakEvent>,
    /// First dynamic execution of each speculative load:
    /// `(function, instruction index, instructions retired at execution)`.
    pub spec_trace: Vec<(String, usize, u64)>,
}

/// Machine state for one program.
pub struct Simulator<'p> {
    prog: &'p MProgram,
    costs: CostModel,
    mem: Vec<Value>,
    stack_base: i64,
    stack_top: i64,
    heap_base: i64,
    heap_top: i64,
    alat: Alat,
    policy: Box<dyn AlatPolicy>,
    counters: Counters,
    fuel: u64,
    taint: Option<TaintState>,
    /// Whether the target has a hardware ALAT. Without one, `ld.c` has
    /// nothing to consult (it always misses) and software check verdicts
    /// ([`MInst::ChkCmp`]) carry the speculation contract instead.
    has_alat: bool,
    /// Policy geometry has zero entries (`always-miss`): every software
    /// check verdict is forced to miss, mirroring a 0-entry ALAT.
    zero_geom: bool,
    /// Pending fault-policy verdict poisonings on a no-ALAT target: each
    /// [`FaultAction`] charges one forced miss against the next software
    /// check (forcing extra misses is always architecturally legal — the
    /// recovery path reloads current memory through the current address).
    poison: u64,
}

impl<'p> Simulator<'p> {
    /// Creates a simulator with globals loaded and the default (fault-free
    /// 32-entry 2-way) ALAT policy.
    pub fn new(prog: &'p MProgram, costs: CostModel, fuel: u64) -> Simulator<'p> {
        Simulator::with_policy(prog, costs, fuel, Box::new(Deterministic::new()))
    }

    /// Creates a simulator whose ALAT geometry and fault behavior are
    /// supplied by `policy` (see [`crate::policy`]).
    pub fn with_policy(
        prog: &'p MProgram,
        costs: CostModel,
        fuel: u64,
        policy: Box<dyn AlatPolicy>,
    ) -> Simulator<'p> {
        let stack_base = prog.globals_end;
        let heap_base = stack_base + STACK_WORDS;
        let g = policy.geometry();
        let mut s = Simulator {
            prog,
            costs,
            mem: Vec::new(),
            stack_base,
            stack_top: stack_base,
            heap_base,
            heap_top: heap_base,
            alat: Alat::with_geometry(g.entries, g.ways),
            policy,
            counters: Counters::default(),
            fuel,
            taint: None,
            has_alat: true,
            zero_geom: g.entries == 0,
            poison: 0,
        };
        for &(addr, v) in &prog.global_image {
            s.poke(addr, v);
        }
        s
    }

    /// Like [`Simulator::with_policy`], but configured for `target`: its
    /// cost table and ALAT presence govern execution. `with_policy` is
    /// exactly `for_target` with the EPIC target.
    pub fn for_target(
        prog: &'p MProgram,
        target: &dyn SpecTarget,
        fuel: u64,
        policy: Box<dyn AlatPolicy>,
    ) -> Simulator<'p> {
        let mut s = Simulator::with_policy(prog, target.costs(), fuel, policy);
        s.has_alat = target.has_alat();
        s
    }

    /// Switches on taint mode: `secret` word addresses are marked secret,
    /// and every taint-to-sink flow inside a speculation window is recorded
    /// (see [`LeakEvent`]). Architectural results are unaffected.
    pub fn enable_taint(&mut self, secret: &[i64]) {
        self.taint = Some(TaintState {
            secret_mem: secret.iter().copied().collect(),
            events: Vec::new(),
            seen: Default::default(),
            spec_trace: Vec::new(),
            traced: Default::default(),
            ret_secret: false,
        });
    }

    /// Counters so far (ALAT counters folded in).
    pub fn counters(&self) -> Counters {
        let mut c = self.counters;
        c.alat_inserts = self.alat.inserts;
        c.alat_store_invalidations = self.alat.store_invalidations;
        c.alat_evictions = self.alat.evictions;
        c.alat_fault_kills = self.alat.fault_kills;
        c.alat_flash_clears = self.alat.flash_clears;
        c
    }

    /// Reads a memory cell; `None` for addresses outside the mapped
    /// globals/stack/heap range, so callers can't mistake out-of-range
    /// reads for real zeros.
    pub fn peek(&self, addr: i64) -> Option<Value> {
        if !self.addr_ok(addr) {
            return None;
        }
        Some(self.mem.get(addr as usize).copied().unwrap_or(Value::I(0)))
    }

    fn poke(&mut self, addr: i64, v: Value) {
        let i = addr as usize;
        if i >= self.mem.len() {
            self.mem.resize(i + 1, Value::I(0));
        }
        self.mem[i] = v;
    }

    fn addr_ok(&self, addr: i64) -> bool {
        addr >= 16 && addr < self.heap_top.max(self.heap_base) && addr < MEM_CAP
    }

    fn load_cell(&self, addr: i64, ty: Ty) -> Value {
        // callers verify addr_ok first; an unmapped-but-valid cell is 0
        coerce(self.peek(addr).unwrap_or(Value::I(0)), ty)
    }

    /// Runs function `index` with `args`.
    ///
    /// # Errors
    /// See [`SimError`].
    pub fn run(&mut self, index: usize, args: &[Value]) -> Result<Option<Value>, SimError> {
        self.call(index, args, &[], 0)
    }

    fn call(
        &mut self,
        index: usize,
        args: &[Value],
        arg_secret: &[bool],
        depth: usize,
    ) -> Result<Option<Value>, SimError> {
        if depth >= MAX_DEPTH {
            return Err(SimError::StackOverflow);
        }
        let f: &MFunc = &self.prog.funcs[index];
        if args.len() != f.params as usize {
            return Err(SimError::BadEntryArgs);
        }
        self.counters.promoted_regs = self
            .counters
            .promoted_regs
            .max(f.promoted_regs.len() as u64);

        let mut regs = vec![Value::I(0); f.regs as usize];
        regs[..args.len()].copy_from_slice(args);
        // taint shadow: speculation windows are frame-local (mirroring the
        // static leak audit's intraprocedural model); secret bits cross the
        // call boundary with the argument values
        let mut taints = vec![TaintCell::default(); f.regs as usize];
        for (cell, &s) in taints.iter_mut().zip(arg_secret) {
            cell.secret = s;
        }

        // slots
        let frame_base = self.stack_top;
        let mut slot_base = Vec::with_capacity(f.slot_words.len());
        for &w in &f.slot_words {
            let base = self.stack_top;
            let end = base + i64::from(w);
            if end > self.stack_base + STACK_WORDS {
                return Err(SimError::StackExhausted);
            }
            for a in base..end {
                self.poke(a, Value::I(0));
            }
            slot_base.push(base);
            self.stack_top = end;
        }

        let result = self.exec(f, &mut regs, &mut taints, &slot_base, depth);
        self.stack_top = frame_base;
        result
    }

    /// Consumes one pending fault-policy poisoning (no-ALAT targets); the
    /// forced miss is accounted like an ALAT entry lost to the policy.
    fn take_poison(&mut self) -> bool {
        if self.poison > 0 {
            self.poison -= 1;
            self.alat.fault_kills += 1;
            true
        } else {
            false
        }
    }

    /// Records one taint-to-sink flow (taint mode only; no-op when the
    /// window set of `cell` is empty).
    fn leak_event(&mut self, f: &MFunc, at: usize, cell: &TaintCell, sink: SinkClass) {
        if cell.win.is_empty() {
            return;
        }
        if self.taint.is_none() {
            return;
        }
        match sink {
            SinkClass::Address => self.counters.leak_addr_events += 1,
            SinkClass::Branch => self.counters.leak_branch_events += 1,
        }
        if cell.secret {
            self.counters.leak_secret_events += 1;
        }
        let ts = self.taint.as_mut().expect("taint on");
        if ts.seen.insert((f.name.clone(), at)) {
            ts.events.push(LeakEvent {
                func: f.name.clone(),
                at,
                origin: *cell.win.iter().next().expect("non-empty window"),
                sink,
                secret: cell.secret,
            });
        }
    }

    fn exec(
        &mut self,
        f: &MFunc,
        regs: &mut [Value],
        taints: &mut [TaintCell],
        slot_base: &[i64],
        depth: usize,
    ) -> Result<Option<Value>, SimError> {
        let eval = |regs: &[Value], o: MOperand| -> Value {
            match o {
                MOperand::R(r) => regs[r.0 as usize],
                MOperand::I(v) => Value::I(v),
                MOperand::F(v) => Value::F(v),
                MOperand::SlotAddr(s) => Value::I(slot_base[s as usize]),
            }
        };
        // taint shadow of an operand: registers carry their cell, every
        // immediate is clean
        let tcell = |taints: &[TaintCell], o: MOperand| -> TaintCell {
            match o {
                MOperand::R(r) => taints[r.0 as usize].clone(),
                _ => TaintCell::default(),
            }
        };
        let taint_on = self.taint.is_some();
        let mut pc = 0usize;
        loop {
            if self.fuel == 0 {
                return Err(SimError::OutOfFuel);
            }
            self.fuel -= 1;
            self.counters.insts += 1;
            // the fault policy may drop ALAT entries at any instruction
            // boundary — the architecture explicitly permits this; on a
            // no-ALAT target the same injections poison upcoming software
            // check verdicts instead (a forced recovery-branch miss)
            match self.policy.on_inst() {
                FaultAction::None => {}
                FaultAction::KillOne(lottery) => {
                    if self.has_alat {
                        self.alat.kill_one(lottery);
                    } else {
                        self.poison += 1;
                    }
                }
                FaultAction::FlashClear => {
                    if self.has_alat {
                        self.alat.flash_clear();
                    } else {
                        self.poison += 1;
                        self.alat.flash_clears += 1;
                    }
                }
            }
            let at = pc;
            let inst = &f.code[pc];
            pc += 1;
            match inst {
                MInst::Mov { d, s } => {
                    regs[d.0 as usize] = eval(regs, *s);
                    if taint_on {
                        taints[d.0 as usize] = tcell(taints, *s);
                    }
                    self.counters.cycles += self.costs.alu;
                }
                MInst::Alu { d, op, a, b } => {
                    let va = eval(regs, *a);
                    let vb = eval(regs, *b);
                    regs[d.0 as usize] = alu(*op, va, vb)?;
                    if taint_on {
                        let mut c = tcell(taints, *a);
                        let cb = tcell(taints, *b);
                        c.secret |= cb.secret;
                        c.win.extend(cb.win);
                        taints[d.0 as usize] = c;
                    }
                    self.counters.cycles += self.costs.alu;
                }
                MInst::Un { d, op, a } => {
                    regs[d.0 as usize] = un(*op, eval(regs, *a));
                    if taint_on {
                        taints[d.0 as usize] = tcell(taints, *a);
                    }
                    self.counters.cycles += self.costs.alu;
                }
                MInst::Ld {
                    d,
                    base,
                    off,
                    ty,
                    kind,
                } => {
                    if taint_on {
                        let bc = tcell(taints, *base);
                        self.leak_event(f, at, &bc, SinkClass::Address);
                    }
                    let vb = eval(regs, *base);
                    let speculative = *kind == LdKind::SpecAdvanced;
                    // a speculative flavour opens a window; plain and
                    // recovery loads close any window on the destination
                    let advanced = matches!(kind, LdKind::Advanced | LdKind::SpecAdvanced);
                    // taint: a spec load opens a window keyed by its dest
                    let open_window = |taints: &mut [TaintCell], secret: bool| {
                        let mut c = tcell(taints, *base);
                        c.secret = secret;
                        if advanced {
                            c.win.insert(d.0);
                        } else {
                            c.win.clear();
                        }
                        taints[d.0 as usize] = c;
                    };
                    if vb.is_nat() {
                        if speculative {
                            regs[d.0 as usize] = Value::Nat;
                            if taint_on {
                                open_window(taints, false);
                            }
                            self.counters.cycles += self.costs.alu;
                            continue;
                        }
                        return Err(SimError::NatConsumed);
                    }
                    let addr = vb.as_i64() + off;
                    if !self.addr_ok(addr) {
                        if speculative {
                            // deferred fault: NaT, no ALAT entry
                            regs[d.0 as usize] = Value::Nat;
                            if taint_on {
                                open_window(taints, false);
                            }
                            self.counters.cycles += self.costs.alu;
                            continue;
                        }
                        return Err(SimError::BadAddress(addr));
                    }
                    let v = self.load_cell(addr, *ty);
                    regs[d.0 as usize] = v;
                    if taint_on {
                        let secret = self
                            .taint
                            .as_ref()
                            .expect("taint on")
                            .secret_mem
                            .contains(&addr);
                        if secret {
                            self.counters.taint_loads += 1;
                        }
                        open_window(taints, secret);
                        if advanced {
                            let dyn_inst = self.counters.insts;
                            let ts = self.taint.as_mut().expect("taint on");
                            if ts.traced.insert((f.name.clone(), at)) {
                                ts.spec_trace.push((f.name.clone(), at, dyn_inst));
                            }
                        }
                    }
                    let lat = self.costs.load(*ty);
                    self.counters.cycles += lat;
                    self.counters.data_access_cycles += lat;
                    self.counters.loads_retired += 1;
                    if ty.is_float() {
                        self.counters.fp_loads += 1;
                    } else {
                        self.counters.int_loads += 1;
                    }
                    if advanced && self.has_alat {
                        self.alat.insert(*d, addr);
                    }
                }
                MInst::Chk {
                    d,
                    base,
                    off,
                    ty,
                    kind,
                } => {
                    if taint_on {
                        let bc = tcell(taints, *base);
                        self.leak_event(f, at, &bc, SinkClass::Address);
                    }
                    let vb = eval(regs, *base);
                    if vb.is_nat() {
                        return Err(SimError::NatConsumed);
                    }
                    let addr = vb.as_i64() + off;
                    if !self.addr_ok(addr) {
                        return Err(SimError::BadAddress(addr));
                    }
                    self.counters.check_loads += 1;
                    let ok = match kind {
                        ChkKind::Alat => {
                            // without ALAT hardware an `ld.c` has nothing
                            // to consult: it conservatively misses (lowering
                            // for such targets emits ChkCmp sequences, so
                            // this arm is a defensive fallback there)
                            self.has_alat
                                && !self.policy.force_miss()
                                && self.alat.check(*d, addr)
                                && !regs[d.0 as usize].is_nat()
                        }
                        ChkKind::Nat => !regs[d.0 as usize].is_nat(),
                    };
                    // semantics: a passed check certifies the register
                    // already holds the memory value; a failed check
                    // re-loads and (for ALAT checks) re-allocates the entry
                    if ok {
                        self.counters.cycles += self.costs.check_ok;
                    } else {
                        let v = self.load_cell(addr, *ty);
                        regs[d.0 as usize] = v;
                        let lat = self.costs.load(*ty) + self.costs.check_fail_penalty;
                        self.counters.cycles += lat;
                        self.counters.data_access_cycles += lat;
                        self.counters.failed_checks += 1;
                        if *kind == ChkKind::Alat && self.has_alat {
                            self.alat.insert(*d, addr);
                        }
                    }
                    if taint_on {
                        // the check resolves the speculation window opened by
                        // the matching spec load: close it everywhere
                        for c in taints.iter_mut() {
                            c.win.remove(&d.0);
                        }
                        let secret = self
                            .taint
                            .as_ref()
                            .expect("taint on")
                            .secret_mem
                            .contains(&addr);
                        taints[d.0 as usize] = TaintCell {
                            secret,
                            win: Default::default(),
                        };
                    }
                }
                MInst::ChkCmp { d, val, cond } => {
                    // software check verdict (no-ALAT targets): the lowered
                    // sequence computed `cond` = "recorded address and epoch
                    // still match"; the verdict also fails when the policy
                    // forces a miss or the checked value is NaT, sending the
                    // following branch down the recovery reload
                    let c = eval(regs, *cond);
                    self.counters.check_loads += 1;
                    let forced = self.policy.force_miss() || self.zero_geom || self.take_poison();
                    let ok =
                        !forced && !c.is_nat() && c.as_i64() != 0 && !regs[val.0 as usize].is_nat();
                    regs[d.0 as usize] = Value::I(i64::from(ok));
                    if ok {
                        self.counters.cycles += self.costs.check_ok;
                    } else {
                        self.counters.cycles += self.costs.check_fail_penalty;
                        self.counters.data_access_cycles += self.costs.check_fail_penalty;
                        self.counters.failed_checks += 1;
                    }
                    if taint_on {
                        // the verdict resolves the speculation window opened
                        // by the advanced load whose destination is `val`
                        for c in taints.iter_mut() {
                            c.win.remove(&val.0);
                        }
                        taints[val.0 as usize].win.clear();
                        taints[d.0 as usize] = TaintCell::default();
                    }
                }
                MInst::St { base, off, val, ty } => {
                    if taint_on {
                        let bc = tcell(taints, *base);
                        self.leak_event(f, at, &bc, SinkClass::Address);
                    }
                    let vb = eval(regs, *base);
                    if vb.is_nat() {
                        return Err(SimError::NatConsumed);
                    }
                    let addr = vb.as_i64() + off;
                    if !self.addr_ok(addr) {
                        return Err(SimError::BadAddress(addr));
                    }
                    let v = eval(regs, *val);
                    if v.is_nat() {
                        return Err(SimError::NatConsumed);
                    }
                    self.poke(addr, coerce(v, *ty));
                    if self.has_alat {
                        self.alat.invalidate(addr);
                    }
                    if taint_on {
                        let vsecret = tcell(taints, *val).secret;
                        let ts = self.taint.as_mut().expect("taint on");
                        if vsecret {
                            ts.secret_mem.insert(addr);
                        } else {
                            ts.secret_mem.remove(&addr);
                        }
                    }
                    self.counters.stores += 1;
                    self.counters.cycles += self.costs.store;
                }
                MInst::Call { d, func, args } => {
                    let vals: Vec<Value> = args.iter().map(|&a| eval(regs, a)).collect();
                    if vals.iter().any(|v| v.is_nat()) {
                        return Err(SimError::NatConsumed);
                    }
                    // secret bits cross the call; speculation windows are
                    // frame-local (mirrors the intraprocedural static audit)
                    let arg_secret: Vec<bool> = if taint_on {
                        args.iter().map(|&a| tcell(taints, a).secret).collect()
                    } else {
                        Vec::new()
                    };
                    self.counters.calls += 1;
                    self.counters.cycles += self.costs.call_overhead;
                    let r = self.call(*func, &vals, &arg_secret, depth + 1)?;
                    if let Some(d) = d {
                        regs[d.0 as usize] = r.unwrap_or(Value::I(0));
                        if taint_on {
                            let ret_secret = self.taint.as_ref().expect("taint on").ret_secret;
                            taints[d.0 as usize] = TaintCell {
                                secret: ret_secret,
                                win: Default::default(),
                            };
                        }
                    }
                }
                MInst::Alloc { d, words } => {
                    let w = eval(regs, *words).as_i64().max(0);
                    let base = self.heap_top;
                    if base + w > MEM_CAP {
                        return Err(SimError::BadAddress(base + w));
                    }
                    self.heap_top += w;
                    regs[d.0 as usize] = Value::I(base);
                    if taint_on {
                        taints[d.0 as usize] = TaintCell::default();
                    }
                    self.counters.cycles += self.costs.alloc;
                }
                MInst::Fence => {
                    // barrier: every in-flight advanced load resolves here,
                    // so all open speculation windows close
                    self.counters.fences_retired += 1;
                    self.counters.cycles += self.costs.fence;
                    if taint_on {
                        for c in taints.iter_mut() {
                            c.win.clear();
                        }
                    }
                }
                MInst::Jmp(t) => {
                    self.counters.cycles += self.costs.branch;
                    self.counters.branches += 1;
                    pc = *t;
                }
                MInst::Br { cond, then_, else_ } => {
                    if taint_on {
                        let cc = tcell(taints, *cond);
                        self.leak_event(f, at, &cc, SinkClass::Branch);
                    }
                    let c = eval(regs, *cond);
                    if c.is_nat() {
                        return Err(SimError::NatConsumed);
                    }
                    self.counters.cycles += self.costs.branch;
                    self.counters.branches += 1;
                    pc = if c.as_i64() != 0 { *then_ } else { *else_ };
                }
                MInst::Ret(v) => {
                    self.counters.cycles += self.costs.branch;
                    if taint_on {
                        let secret = v.map(|v| tcell(taints, v).secret).unwrap_or(false);
                        self.taint.as_mut().expect("taint on").ret_secret = secret;
                    }
                    return Ok(v.map(|v| eval(regs, v)));
                }
            }
        }
    }
}

fn coerce(v: Value, ty: Ty) -> Value {
    match (ty, v) {
        (Ty::F64, Value::I(x)) => Value::F(x as f64),
        (Ty::F64, v) => v,
        (_, Value::F(x)) => Value::I(x as i64),
        (_, v) => v,
    }
}

fn alu(op: BinOp, a: Value, b: Value) -> Result<Value, SimError> {
    use BinOp::*;
    if a.is_nat() || b.is_nat() {
        return Ok(Value::Nat);
    }
    Ok(match op {
        Add => Value::I(a.as_i64().wrapping_add(b.as_i64())),
        Sub => Value::I(a.as_i64().wrapping_sub(b.as_i64())),
        Mul => Value::I(a.as_i64().wrapping_mul(b.as_i64())),
        Div => {
            let d = b.as_i64();
            if d == 0 {
                return Err(SimError::DivByZero);
            }
            Value::I(a.as_i64().wrapping_div(d))
        }
        Mod => {
            let d = b.as_i64();
            if d == 0 {
                return Err(SimError::DivByZero);
            }
            Value::I(a.as_i64().wrapping_rem(d))
        }
        And => Value::I(a.as_i64() & b.as_i64()),
        Or => Value::I(a.as_i64() | b.as_i64()),
        Xor => Value::I(a.as_i64() ^ b.as_i64()),
        Shl => Value::I(a.as_i64().wrapping_shl(b.as_i64() as u32)),
        Shr => Value::I(a.as_i64().wrapping_shr(b.as_i64() as u32)),
        Eq => Value::I((a.as_i64() == b.as_i64()) as i64),
        Ne => Value::I((a.as_i64() != b.as_i64()) as i64),
        Lt => Value::I((a.as_i64() < b.as_i64()) as i64),
        Le => Value::I((a.as_i64() <= b.as_i64()) as i64),
        Gt => Value::I((a.as_i64() > b.as_i64()) as i64),
        Ge => Value::I((a.as_i64() >= b.as_i64()) as i64),
        FAdd => Value::F(a.as_f64() + b.as_f64()),
        FSub => Value::F(a.as_f64() - b.as_f64()),
        FMul => Value::F(a.as_f64() * b.as_f64()),
        FDiv => Value::F(a.as_f64() / b.as_f64()),
        FEq => Value::I((a.as_f64() == b.as_f64()) as i64),
        FNe => Value::I((a.as_f64() != b.as_f64()) as i64),
        FLt => Value::I((a.as_f64() < b.as_f64()) as i64),
        FLe => Value::I((a.as_f64() <= b.as_f64()) as i64),
        FGt => Value::I((a.as_f64() > b.as_f64()) as i64),
        FGe => Value::I((a.as_f64() >= b.as_f64()) as i64),
    })
}

fn un(op: UnOp, a: Value) -> Value {
    if a.is_nat() {
        return Value::Nat;
    }
    match op {
        UnOp::Neg => Value::I(a.as_i64().wrapping_neg()),
        UnOp::Not => Value::I(!a.as_i64()),
        UnOp::FNeg => Value::F(-a.as_f64()),
        UnOp::I2F => Value::F(a.as_i64() as f64),
        UnOp::F2I => Value::I(a.as_f64() as i64),
    }
}

/// Convenience: run `entry` with `args` under the default cost model.
///
/// # Errors
/// See [`SimError`].
pub fn run_machine(
    prog: &MProgram,
    entry: &str,
    args: &[Value],
    fuel: u64,
) -> Result<(Option<Value>, Counters), SimError> {
    run_machine_with_policy(prog, entry, args, fuel, Box::new(Deterministic::new()))
}

/// Like [`run_machine`], but for an explicit target (cost table and ALAT
/// presence).
///
/// # Errors
/// See [`SimError`].
pub fn run_machine_on(
    prog: &MProgram,
    target: &dyn SpecTarget,
    entry: &str,
    args: &[Value],
    fuel: u64,
) -> Result<(Option<Value>, Counters), SimError> {
    run_machine_with_policy_on(
        prog,
        target,
        entry,
        args,
        fuel,
        Box::new(Deterministic::new()),
    )
}

/// Like [`run_machine`], but under an explicit ALAT fault policy (see
/// [`crate::policy::parse_fault_policy`] for the string grammar).
///
/// # Errors
/// See [`SimError`].
pub fn run_machine_with_policy(
    prog: &MProgram,
    entry: &str,
    args: &[Value],
    fuel: u64,
    policy: Box<dyn AlatPolicy>,
) -> Result<(Option<Value>, Counters), SimError> {
    run_machine_with_policy_on(prog, TargetId::Epic.spec(), entry, args, fuel, policy)
}

/// Like [`run_machine_with_policy`], but for an explicit target.
///
/// # Errors
/// See [`SimError`].
pub fn run_machine_with_policy_on(
    prog: &MProgram,
    target: &dyn SpecTarget,
    entry: &str,
    args: &[Value],
    fuel: u64,
    policy: Box<dyn AlatPolicy>,
) -> Result<(Option<Value>, Counters), SimError> {
    let idx = prog
        .func_by_name(entry)
        .ok_or_else(|| SimError::NoSuchFunction(entry.to_string()))?;
    let mut sim = Simulator::for_target(prog, target, fuel, policy);
    let r = sim.run(idx, args)?;
    Ok((r, sim.counters()))
}

/// Like [`run_machine_with_policy`], but with taint tracking on: `secret`
/// word addresses are marked secret, and every flow from an open
/// speculation window into an address or branch sink is recorded.
///
/// # Errors
/// See [`SimError`].
pub fn run_machine_taint(
    prog: &MProgram,
    entry: &str,
    args: &[Value],
    fuel: u64,
    policy: Box<dyn AlatPolicy>,
    secret: &[i64],
) -> Result<TaintReport, SimError> {
    run_machine_taint_on(
        prog,
        TargetId::Epic.spec(),
        entry,
        args,
        fuel,
        policy,
        secret,
    )
}

/// Like [`run_machine_taint`], but for an explicit target.
///
/// # Errors
/// See [`SimError`].
#[allow(clippy::too_many_arguments)]
pub fn run_machine_taint_on(
    prog: &MProgram,
    target: &dyn SpecTarget,
    entry: &str,
    args: &[Value],
    fuel: u64,
    policy: Box<dyn AlatPolicy>,
    secret: &[i64],
) -> Result<TaintReport, SimError> {
    let idx = prog
        .func_by_name(entry)
        .ok_or_else(|| SimError::NoSuchFunction(entry.to_string()))?;
    let mut sim = Simulator::for_target(prog, target, fuel, policy);
    sim.enable_taint(secret);
    let result = sim.run(idx, args)?;
    let counters = sim.counters();
    let ts = sim.taint.take().expect("taint on");
    Ok(TaintReport {
        result,
        counters,
        events: ts.events,
        spec_trace: ts.spec_trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::*;

    fn prog_one(f: MFunc) -> MProgram {
        MProgram {
            funcs: vec![f],
            global_image: vec![(16, Value::I(42)), (17, Value::F(2.5))],
            globals_end: 18,
        }
    }

    #[test]
    fn basic_load_add_store() {
        let f = MFunc {
            name: "main".into(),
            params: 0,
            regs: 2,
            slot_words: vec![],
            code: vec![
                MInst::Ld {
                    d: Reg(0),
                    base: MOperand::I(16),
                    off: 0,
                    ty: Ty::I64,
                    kind: LdKind::Normal,
                },
                MInst::Alu {
                    d: Reg(1),
                    op: BinOp::Add,
                    a: MOperand::R(Reg(0)),
                    b: MOperand::I(1),
                },
                MInst::St {
                    base: MOperand::I(16),
                    off: 0,
                    val: MOperand::R(Reg(1)),
                    ty: Ty::I64,
                },
                MInst::Ret(Some(MOperand::R(Reg(1)))),
            ],
            promoted_regs: vec![],
        };
        let p = prog_one(f);
        let (r, c) = run_machine(&p, "main", &[], 1000).unwrap();
        assert_eq!(r, Some(Value::I(43)));
        assert_eq!(c.loads_retired, 1);
        assert_eq!(c.int_loads, 1);
        assert_eq!(c.stores, 1);
        // 2 (load) + 1 (alu) + 1 (store) + 1 (ret)
        assert_eq!(c.cycles, 5);
        assert_eq!(c.data_access_cycles, 2);
    }

    #[test]
    fn fp_load_costs_nine() {
        let f = MFunc {
            name: "main".into(),
            params: 0,
            regs: 1,
            slot_words: vec![],
            code: vec![
                MInst::Ld {
                    d: Reg(0),
                    base: MOperand::I(17),
                    off: 0,
                    ty: Ty::F64,
                    kind: LdKind::Normal,
                },
                MInst::Ret(Some(MOperand::R(Reg(0)))),
            ],
            promoted_regs: vec![],
        };
        let (r, c) = run_machine(&prog_one(f), "main", &[], 100).unwrap();
        assert_eq!(r, Some(Value::F(2.5)));
        assert_eq!(c.fp_loads, 1);
        assert_eq!(c.data_access_cycles, 9);
    }

    #[test]
    fn successful_check_costs_zero() {
        // ld.a then ld.c with no intervening store: check hits, 0 cycles
        let f = MFunc {
            name: "main".into(),
            params: 0,
            regs: 1,
            slot_words: vec![],
            code: vec![
                MInst::Ld {
                    d: Reg(0),
                    base: MOperand::I(16),
                    off: 0,
                    ty: Ty::I64,
                    kind: LdKind::Advanced,
                },
                MInst::Chk {
                    d: Reg(0),
                    base: MOperand::I(16),
                    off: 0,
                    ty: Ty::I64,
                    kind: ChkKind::Alat,
                },
                MInst::Ret(Some(MOperand::R(Reg(0)))),
            ],
            promoted_regs: vec![Reg(0)],
        };
        let (r, c) = run_machine(&prog_one(f), "main", &[], 100).unwrap();
        assert_eq!(r, Some(Value::I(42)));
        assert_eq!(c.check_loads, 1);
        assert_eq!(c.failed_checks, 0);
        assert_eq!(c.mis_speculation_ratio(), 0.0);
        // 2 (ld.a) + 0 (check) + 1 (ret)
        assert_eq!(c.cycles, 3);
    }

    #[test]
    fn aliasing_store_fails_check_and_reloads() {
        // ld.a; store to the same address; ld.c must miss and reload the
        // NEW value — this is the paper's correctness guarantee
        let f = MFunc {
            name: "main".into(),
            params: 0,
            regs: 1,
            slot_words: vec![],
            code: vec![
                MInst::Ld {
                    d: Reg(0),
                    base: MOperand::I(16),
                    off: 0,
                    ty: Ty::I64,
                    kind: LdKind::Advanced,
                },
                MInst::St {
                    base: MOperand::I(16),
                    off: 0,
                    val: MOperand::I(99),
                    ty: Ty::I64,
                },
                MInst::Chk {
                    d: Reg(0),
                    base: MOperand::I(16),
                    off: 0,
                    ty: Ty::I64,
                    kind: ChkKind::Alat,
                },
                MInst::Ret(Some(MOperand::R(Reg(0)))),
            ],
            promoted_regs: vec![Reg(0)],
        };
        let (r, c) = run_machine(&prog_one(f), "main", &[], 100).unwrap();
        assert_eq!(r, Some(Value::I(99)), "failed check must reload");
        assert_eq!(c.failed_checks, 1);
        assert!(c.mis_speculation_ratio() > 0.99);
        assert_eq!(c.alat_store_invalidations, 1);
    }

    #[test]
    fn non_aliasing_store_keeps_check_cheap() {
        let f = MFunc {
            name: "main".into(),
            params: 0,
            regs: 1,
            slot_words: vec![],
            code: vec![
                MInst::Ld {
                    d: Reg(0),
                    base: MOperand::I(16),
                    off: 0,
                    ty: Ty::I64,
                    kind: LdKind::Advanced,
                },
                MInst::St {
                    base: MOperand::I(17),
                    off: 0,
                    val: MOperand::I(99),
                    ty: Ty::I64,
                },
                MInst::Chk {
                    d: Reg(0),
                    base: MOperand::I(16),
                    off: 0,
                    ty: Ty::I64,
                    kind: ChkKind::Alat,
                },
                MInst::Ret(Some(MOperand::R(Reg(0)))),
            ],
            promoted_regs: vec![Reg(0)],
        };
        let (r, c) = run_machine(&prog_one(f), "main", &[], 100).unwrap();
        assert_eq!(r, Some(Value::I(42)));
        assert_eq!(c.failed_checks, 0);
    }

    #[test]
    fn speculative_load_defers_fault() {
        // ld.sa of address 0 yields NaT; NaT check reloads from the good
        // address (models chk.s recovery)
        let f = MFunc {
            name: "main".into(),
            params: 0,
            regs: 1,
            slot_words: vec![],
            code: vec![
                MInst::Ld {
                    d: Reg(0),
                    base: MOperand::I(0),
                    off: 0,
                    ty: Ty::I64,
                    kind: LdKind::SpecAdvanced,
                },
                MInst::Chk {
                    d: Reg(0),
                    base: MOperand::I(16),
                    off: 0,
                    ty: Ty::I64,
                    kind: ChkKind::Nat,
                },
                MInst::Ret(Some(MOperand::R(Reg(0)))),
            ],
            promoted_regs: vec![],
        };
        let (r, c) = run_machine(&prog_one(f), "main", &[], 100).unwrap();
        assert_eq!(r, Some(Value::I(42)));
        assert_eq!(c.failed_checks, 1);
        assert_eq!(c.loads_retired, 0, "the faulting ld.sa retires no load");
    }

    #[test]
    fn loop_counts_branches_and_fuel() {
        // r0 = 5; loop: r0 -= 1; br r0 != 0
        let f = MFunc {
            name: "main".into(),
            params: 0,
            regs: 1,
            slot_words: vec![],
            code: vec![
                MInst::Mov {
                    d: Reg(0),
                    s: MOperand::I(5),
                },
                MInst::Alu {
                    d: Reg(0),
                    op: BinOp::Sub,
                    a: MOperand::R(Reg(0)),
                    b: MOperand::I(1),
                },
                MInst::Br {
                    cond: MOperand::R(Reg(0)),
                    then_: 1,
                    else_: 3,
                },
                MInst::Ret(Some(MOperand::R(Reg(0)))),
            ],
            promoted_regs: vec![],
        };
        let (r, c) = run_machine(&prog_one(f), "main", &[], 100).unwrap();
        assert_eq!(r, Some(Value::I(0)));
        assert_eq!(c.branches, 5);
    }

    #[test]
    fn calls_recurse_with_overhead() {
        let callee = MFunc {
            name: "id".into(),
            params: 1,
            regs: 1,
            slot_words: vec![],
            code: vec![MInst::Ret(Some(MOperand::R(Reg(0))))],
            promoted_regs: vec![],
        };
        let main = MFunc {
            name: "main".into(),
            params: 0,
            regs: 1,
            slot_words: vec![],
            code: vec![
                MInst::Call {
                    d: Some(Reg(0)),
                    func: 0,
                    args: vec![MOperand::I(7)],
                },
                MInst::Ret(Some(MOperand::R(Reg(0)))),
            ],
            promoted_regs: vec![],
        };
        let p = MProgram {
            funcs: vec![callee, main],
            global_image: vec![],
            globals_end: 16,
        };
        let (r, c) = run_machine(&p, "main", &[], 100).unwrap();
        assert_eq!(r, Some(Value::I(7)));
        assert_eq!(c.calls, 1);
    }

    #[test]
    fn alat_survives_calls() {
        // IA-64 preserves the ALAT across calls; a callee that stores to an
        // unrelated address must not disturb the caller's entry
        let callee = MFunc {
            name: "noise".into(),
            params: 0,
            regs: 0,
            slot_words: vec![],
            code: vec![
                MInst::St {
                    base: MOperand::I(17),
                    off: 0,
                    val: MOperand::I(5),
                    ty: Ty::F64,
                },
                MInst::Ret(None),
            ],
            promoted_regs: vec![],
        };
        let main = MFunc {
            name: "main".into(),
            params: 0,
            regs: 1,
            slot_words: vec![],
            code: vec![
                MInst::Ld {
                    d: Reg(0),
                    base: MOperand::I(16),
                    off: 0,
                    ty: Ty::I64,
                    kind: LdKind::Advanced,
                },
                MInst::Call {
                    d: None,
                    func: 0,
                    args: vec![],
                },
                MInst::Chk {
                    d: Reg(0),
                    base: MOperand::I(16),
                    off: 0,
                    ty: Ty::I64,
                    kind: ChkKind::Alat,
                },
                MInst::Ret(Some(MOperand::R(Reg(0)))),
            ],
            promoted_regs: vec![Reg(0)],
        };
        let p = MProgram {
            funcs: vec![callee, main],
            global_image: vec![(16, Value::I(42)), (17, Value::F(0.0))],
            globals_end: 18,
        };
        let (r, c) = run_machine(&p, "main", &[], 1000).unwrap();
        assert_eq!(r, Some(Value::I(42)));
        assert_eq!(
            c.failed_checks, 0,
            "unrelated callee store must not fail the check"
        );
    }

    #[test]
    fn callee_aliasing_store_fails_caller_check() {
        let callee = MFunc {
            name: "clobber".into(),
            params: 0,
            regs: 0,
            slot_words: vec![],
            code: vec![
                MInst::St {
                    base: MOperand::I(16),
                    off: 0,
                    val: MOperand::I(77),
                    ty: Ty::I64,
                },
                MInst::Ret(None),
            ],
            promoted_regs: vec![],
        };
        let main = MFunc {
            name: "main".into(),
            params: 0,
            regs: 1,
            slot_words: vec![],
            code: vec![
                MInst::Ld {
                    d: Reg(0),
                    base: MOperand::I(16),
                    off: 0,
                    ty: Ty::I64,
                    kind: LdKind::Advanced,
                },
                MInst::Call {
                    d: None,
                    func: 0,
                    args: vec![],
                },
                MInst::Chk {
                    d: Reg(0),
                    base: MOperand::I(16),
                    off: 0,
                    ty: Ty::I64,
                    kind: ChkKind::Alat,
                },
                MInst::Ret(Some(MOperand::R(Reg(0)))),
            ],
            promoted_regs: vec![Reg(0)],
        };
        let p = MProgram {
            funcs: vec![callee, main],
            global_image: vec![(16, Value::I(42))],
            globals_end: 17,
        };
        let (r, c) = run_machine(&p, "main", &[], 1000).unwrap();
        assert_eq!(
            r,
            Some(Value::I(77)),
            "check must reload the callee's store"
        );
        assert_eq!(c.failed_checks, 1);
    }

    #[test]
    fn alloc_grows_heap_and_counts() {
        let f = MFunc {
            name: "main".into(),
            params: 0,
            regs: 2,
            slot_words: vec![],
            code: vec![
                MInst::Alloc {
                    d: Reg(0),
                    words: MOperand::I(8),
                },
                MInst::St {
                    base: MOperand::R(Reg(0)),
                    off: 3,
                    val: MOperand::I(9),
                    ty: Ty::I64,
                },
                MInst::Ld {
                    d: Reg(1),
                    base: MOperand::R(Reg(0)),
                    off: 3,
                    ty: Ty::I64,
                    kind: LdKind::Normal,
                },
                MInst::Ret(Some(MOperand::R(Reg(1)))),
            ],
            promoted_regs: vec![],
        };
        let (r, _) = run_machine(&prog_one(f), "main", &[], 100).unwrap();
        assert_eq!(r, Some(Value::I(9)));
    }

    #[test]
    fn promoted_regs_tracks_frame_maximum() {
        let f = MFunc {
            name: "main".into(),
            params: 0,
            regs: 3,
            slot_words: vec![],
            code: vec![MInst::Ret(None)],
            promoted_regs: vec![Reg(0), Reg(1), Reg(2)],
        };
        let (_, c) = run_machine(&prog_one(f), "main", &[], 100).unwrap();
        assert_eq!(c.promoted_regs, 3);
    }

    #[test]
    fn out_of_fuel_reported() {
        let f = MFunc {
            name: "main".into(),
            params: 0,
            regs: 0,
            slot_words: vec![],
            code: vec![MInst::Jmp(0)],
            promoted_regs: vec![],
        };
        assert_eq!(
            run_machine(&prog_one(f), "main", &[], 10).unwrap_err(),
            SimError::OutOfFuel
        );
    }

    #[test]
    fn fault_policies_never_change_results() {
        // ld.a; non-aliasing store; ld.c — under any fault policy the
        // result must be the memory value, only the counters may differ
        let f = MFunc {
            name: "main".into(),
            params: 0,
            regs: 1,
            slot_words: vec![],
            code: vec![
                MInst::Ld {
                    d: Reg(0),
                    base: MOperand::I(16),
                    off: 0,
                    ty: Ty::I64,
                    kind: LdKind::Advanced,
                },
                MInst::St {
                    base: MOperand::I(17),
                    off: 0,
                    val: MOperand::I(99),
                    ty: Ty::F64,
                },
                MInst::Chk {
                    d: Reg(0),
                    base: MOperand::I(16),
                    off: 0,
                    ty: Ty::I64,
                    kind: ChkKind::Alat,
                },
                MInst::Ret(Some(MOperand::R(Reg(0)))),
            ],
            promoted_regs: vec![Reg(0)],
        };
        let p = prog_one(f);
        for name in crate::policy::fault_matrix() {
            let pol = crate::policy::parse_fault_policy(&name).unwrap();
            let (r, c) = run_machine_with_policy(&p, "main", &[], 1000, pol).unwrap();
            assert_eq!(r, Some(Value::I(42)), "policy {name}");
            assert!(c.failed_checks <= c.check_loads, "policy {name}");
        }
    }

    #[test]
    fn always_miss_policy_forces_recovery() {
        let f = MFunc {
            name: "main".into(),
            params: 0,
            regs: 1,
            slot_words: vec![],
            code: vec![
                MInst::Ld {
                    d: Reg(0),
                    base: MOperand::I(16),
                    off: 0,
                    ty: Ty::I64,
                    kind: LdKind::Advanced,
                },
                MInst::Chk {
                    d: Reg(0),
                    base: MOperand::I(16),
                    off: 0,
                    ty: Ty::I64,
                    kind: ChkKind::Alat,
                },
                MInst::Ret(Some(MOperand::R(Reg(0)))),
            ],
            promoted_regs: vec![Reg(0)],
        };
        let p = prog_one(f);
        let pol = crate::policy::parse_fault_policy("always-miss").unwrap();
        let (r, c) = run_machine_with_policy(&p, "main", &[], 100, pol).unwrap();
        assert_eq!(r, Some(Value::I(42)), "recovery reloads the right value");
        assert_eq!(c.failed_checks, 1, "0-entry ALAT must miss");
        let pol = crate::policy::parse_fault_policy("forced-miss").unwrap();
        let (r, c) = run_machine_with_policy(&p, "main", &[], 100, pol).unwrap();
        assert_eq!(r, Some(Value::I(42)));
        assert_eq!(c.failed_checks, 1);
    }

    #[test]
    fn flash_clear_policy_counts_clears() {
        // a loop long enough to cross the clear period, with a live entry
        let f = MFunc {
            name: "main".into(),
            params: 0,
            regs: 2,
            slot_words: vec![],
            code: vec![
                MInst::Ld {
                    d: Reg(0),
                    base: MOperand::I(16),
                    off: 0,
                    ty: Ty::I64,
                    kind: LdKind::Advanced,
                },
                MInst::Mov {
                    d: Reg(1),
                    s: MOperand::I(40),
                },
                MInst::Alu {
                    d: Reg(1),
                    op: BinOp::Sub,
                    a: MOperand::R(Reg(1)),
                    b: MOperand::I(1),
                },
                MInst::Br {
                    cond: MOperand::R(Reg(1)),
                    then_: 2,
                    else_: 4,
                },
                MInst::Chk {
                    d: Reg(0),
                    base: MOperand::I(16),
                    off: 0,
                    ty: Ty::I64,
                    kind: ChkKind::Alat,
                },
                MInst::Ret(Some(MOperand::R(Reg(0)))),
            ],
            promoted_regs: vec![Reg(0)],
        };
        let p = prog_one(f);
        let pol = crate::policy::parse_fault_policy("flash-clear:10").unwrap();
        let (r, c) = run_machine_with_policy(&p, "main", &[], 10_000, pol).unwrap();
        assert_eq!(r, Some(Value::I(42)));
        assert!(c.alat_flash_clears >= 5, "clears: {}", c.alat_flash_clears);
        assert_eq!(c.alat_fault_kills, 1, "one live entry lost to a clear");
        assert_eq!(c.failed_checks, 1, "the cleared entry must miss");
    }

    #[test]
    fn peek_returns_none_out_of_range() {
        let f = MFunc {
            name: "main".into(),
            params: 0,
            regs: 0,
            slot_words: vec![],
            code: vec![MInst::Ret(None)],
            promoted_regs: vec![],
        };
        let p = prog_one(f);
        let sim = Simulator::new(&p, CostModel::default(), 100);
        assert_eq!(sim.peek(16), Some(Value::I(42)), "mapped global");
        assert_eq!(sim.peek(0), None, "null page");
        assert_eq!(sim.peek(15), None, "reserved low words");
        assert_eq!(sim.peek(-4), None, "negative address");
        assert_eq!(sim.peek(MEM_CAP + 1), None, "beyond the cap");
    }

    #[test]
    fn check_ratio_math() {
        let c = Counters {
            loads_retired: 60,
            check_loads: 40,
            failed_checks: 2,
            ..Default::default()
        };
        assert_eq!(c.total_loads_retired(), 100);
        assert!((c.check_ratio() - 0.4).abs() < 1e-12);
        assert!((c.mis_speculation_ratio() - 0.05).abs() < 1e-12);
    }
}
