//! Adversarial ALAT behavior policies.
//!
//! IA-64 only promises that a `ld.c` *hit* is justified — it never promises
//! a hit. An implementation may drop ALAT entries at any moment: smaller
//! tables, capacity pressure, context switches that flash-invalidate the
//! whole structure. Compiled code is correct only if it computes the same
//! results under **every** such behavior, because the recovery path
//! (re-load on a failed check) is the actual correctness mechanism.
//!
//! An [`AlatPolicy`] decides, per retired instruction, whether the
//! simulated hardware drops entries, and whether a check is forced to
//! miss. The [`Deterministic`] policy is the default 32-entry/2-way model
//! with no injected faults — simulations without an explicit policy behave
//! exactly as before. The adversaries:
//!
//! | name            | behavior                                          |
//! |-----------------|---------------------------------------------------|
//! | `default`       | deterministic 32-entry 2-way table, no faults     |
//! | `geom:E:W`      | deterministic E-entry W-way table (E may be 0)    |
//! | `always-miss`   | 0-entry table — every check load misses           |
//! | `forced-miss`   | default table, but every ALAT check reports miss  |
//! | `random:S[:D]`  | seeded (xorshift64, seed S) kill of one random    |
//! |                 | entry with probability 1/D per instruction        |
//! |                 | (default D = 16)                                  |
//! | `flash-clear[:P]`| drop the whole table every P instructions        |
//! |                 | (default P = 64) — the context-switch model       |
//! | `evict-at:N[:N…]`| drop the whole table exactly at the scheduled    |
//! |                 | instruction counts — the constructed witness the  |
//! |                 | leak auditor emits (see `crate::leaks`)           |
//!
//! All policies are deterministic given their parameters, so a failing
//! differential run reproduces from its policy string alone.

use crate::alat::{ALAT_ENTRIES, ALAT_WAYS};

/// Table geometry a policy asks the simulator to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlatGeometry {
    /// Total entries; 0 builds the always-miss table.
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
}

impl Default for AlatGeometry {
    fn default() -> Self {
        AlatGeometry {
            entries: ALAT_ENTRIES,
            ways: ALAT_WAYS,
        }
    }
}

/// What the hardware does to the ALAT this instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Nothing — the common case.
    None,
    /// Drop one live entry, selected by `lottery % occupancy`.
    KillOne(u64),
    /// Drop every entry (context switch).
    FlashClear,
}

/// A pluggable ALAT behavior model.
///
/// The simulator consults the policy once per retired instruction
/// ([`AlatPolicy::on_inst`]) and once per ALAT check load
/// ([`AlatPolicy::force_miss`]). Policies mutate only their own state;
/// the table itself applies the returned [`FaultAction`].
pub trait AlatPolicy: Send {
    /// The policy string that reproduces this policy (e.g. `random:3:16`).
    fn name(&self) -> String;

    /// Geometry the simulator should build the table with.
    fn geometry(&self) -> AlatGeometry {
        AlatGeometry::default()
    }

    /// Called once per retired instruction, before it executes.
    fn on_inst(&mut self) -> FaultAction {
        FaultAction::None
    }

    /// Called per ALAT check load; `true` forces the check to miss
    /// regardless of table contents.
    fn force_miss(&mut self) -> bool {
        false
    }
}

/// The default model: a fixed-geometry table with no injected faults.
#[derive(Debug, Clone, Copy)]
pub struct Deterministic {
    geometry: AlatGeometry,
}

impl Deterministic {
    /// The stock 32-entry 2-way policy.
    pub fn new() -> Deterministic {
        Deterministic {
            geometry: AlatGeometry::default(),
        }
    }

    /// A deterministic policy with custom geometry.
    pub fn with_geometry(entries: usize, ways: usize) -> Deterministic {
        Deterministic {
            geometry: AlatGeometry { entries, ways },
        }
    }
}

impl Default for Deterministic {
    fn default() -> Self {
        Deterministic::new()
    }
}

impl AlatPolicy for Deterministic {
    fn name(&self) -> String {
        let d = AlatGeometry::default();
        if self.geometry == d {
            "default".into()
        } else if self.geometry.entries == 0 {
            "always-miss".into()
        } else {
            format!("geom:{}:{}", self.geometry.entries, self.geometry.ways)
        }
    }

    fn geometry(&self) -> AlatGeometry {
        self.geometry
    }
}

/// Default table, but every ALAT check is forced to miss — models an
/// implementation that resolves every `ld.c` conservatively. Unlike
/// `always-miss` the table still fills and evicts, so insert/eviction
/// counters stay realistic while every check takes the recovery path.
#[derive(Debug, Clone, Copy, Default)]
pub struct ForcedMiss;

impl AlatPolicy for ForcedMiss {
    fn name(&self) -> String {
        "forced-miss".into()
    }

    fn force_miss(&mut self) -> bool {
        true
    }
}

/// `xorshift64*`-style generator — deterministic, seedable, no external
/// dependency. Never yields 0.
#[derive(Debug, Clone, Copy)]
pub struct XorShift64(u64);

impl XorShift64 {
    /// Seeds the generator; seed 0 is remapped to a fixed odd constant.
    pub fn new(seed: u64) -> XorShift64 {
        XorShift64(if seed == 0 {
            0x9e37_79b9_7f4a_7c15
        } else {
            seed
        })
    }

    /// Next pseudo-random value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// Seeded random eviction: each instruction kills one random live entry
/// with probability `1/denom`.
#[derive(Debug, Clone, Copy)]
pub struct RandomEvict {
    seed: u64,
    denom: u64,
    rng: XorShift64,
}

/// Default kill probability denominator for [`RandomEvict`].
pub const RANDOM_EVICT_DENOM: u64 = 16;

impl RandomEvict {
    /// A random-eviction adversary with kill probability `1/denom` per
    /// instruction (`denom == 0` is clamped to 1, i.e. kill every cycle).
    pub fn new(seed: u64, denom: u64) -> RandomEvict {
        RandomEvict {
            seed,
            denom: denom.max(1),
            rng: XorShift64::new(seed),
        }
    }
}

impl AlatPolicy for RandomEvict {
    fn name(&self) -> String {
        if self.denom == RANDOM_EVICT_DENOM {
            format!("random:{}", self.seed)
        } else {
            format!("random:{}:{}", self.seed, self.denom)
        }
    }

    fn on_inst(&mut self) -> FaultAction {
        if self.rng.next_u64().is_multiple_of(self.denom) {
            FaultAction::KillOne(self.rng.next_u64())
        } else {
            FaultAction::None
        }
    }
}

/// Context-switch adversary: flash-clears the entire table every
/// `period` instructions.
#[derive(Debug, Clone, Copy)]
pub struct FlashClear {
    period: u64,
    until: u64,
}

/// Default flash-clear period (instructions).
pub const FLASH_CLEAR_PERIOD: u64 = 64;

impl FlashClear {
    /// Clears every `period` instructions (`period == 0` clamps to 1).
    pub fn new(period: u64) -> FlashClear {
        let period = period.max(1);
        FlashClear {
            period,
            until: period,
        }
    }
}

impl AlatPolicy for FlashClear {
    fn name(&self) -> String {
        if self.period == FLASH_CLEAR_PERIOD {
            "flash-clear".into()
        } else {
            format!("flash-clear:{}", self.period)
        }
    }

    fn on_inst(&mut self) -> FaultAction {
        self.until -= 1;
        if self.until == 0 {
            self.until = self.period;
            FaultAction::FlashClear
        } else {
            FaultAction::None
        }
    }
}

/// Targeted eviction: flash-clears the table exactly at the scheduled
/// instruction counts (1-based, in `on_inst`-call order). This is the
/// constructed adversary the leak auditor emits — a schedule placed one
/// instruction after a speculative load's ALAT insert forces that
/// specific site into misspeculation, witnessing a static leak report
/// with a concrete run.
#[derive(Debug, Clone)]
pub struct EvictAt {
    schedule: Vec<u64>,
    next: usize,
    seen: u64,
}

impl EvictAt {
    /// Clears the table when the instruction counter reaches each value of
    /// `schedule` (sorted and deduplicated; zeros are dropped).
    pub fn new(mut schedule: Vec<u64>) -> EvictAt {
        schedule.retain(|&t| t > 0);
        schedule.sort_unstable();
        schedule.dedup();
        EvictAt {
            schedule,
            next: 0,
            seen: 0,
        }
    }
}

impl AlatPolicy for EvictAt {
    fn name(&self) -> String {
        let ticks: Vec<String> = self.schedule.iter().map(|t| t.to_string()).collect();
        format!("evict-at:{}", ticks.join(":"))
    }

    fn on_inst(&mut self) -> FaultAction {
        self.seen += 1;
        if self.next < self.schedule.len() && self.schedule[self.next] == self.seen {
            self.next += 1;
            FaultAction::FlashClear
        } else {
            FaultAction::None
        }
    }
}

/// Parses the `--fault-policy` grammar:
///
/// ```text
/// default | geom:E:W | always-miss | forced-miss
///         | random:SEED[:DENOM] | flash-clear[:PERIOD] | evict-at:N[:N...]
/// ```
///
/// # Errors
/// A usage message naming the bad policy string.
pub fn parse_fault_policy(s: &str) -> Result<Box<dyn AlatPolicy>, String> {
    let mut parts = s.split(':');
    let head = parts.next().unwrap_or("");
    let rest: Vec<&str> = parts.collect();
    let arity = |want: std::ops::RangeInclusive<usize>| -> Result<(), String> {
        if want.contains(&rest.len()) {
            Ok(())
        } else {
            Err(format!("bad fault policy `{s}` (try --help)"))
        }
    };
    let num = |t: &str, what: &str| -> Result<u64, String> {
        t.parse::<u64>()
            .map_err(|_| format!("bad fault policy `{s}`: `{t}` is not a valid {what}"))
    };
    match head {
        "default" => {
            arity(0..=0)?;
            Ok(Box::new(Deterministic::new()))
        }
        "geom" => {
            arity(2..=2)?;
            let entries = num(rest[0], "entry count")? as usize;
            let ways = num(rest[1], "way count")?.max(1) as usize;
            Ok(Box::new(Deterministic::with_geometry(entries, ways)))
        }
        "always-miss" => {
            arity(0..=0)?;
            Ok(Box::new(Deterministic::with_geometry(0, 1)))
        }
        "forced-miss" => {
            arity(0..=0)?;
            Ok(Box::new(ForcedMiss))
        }
        "random" => {
            arity(1..=2)?;
            let seed = num(rest[0], "seed")?;
            let denom = match rest.get(1) {
                Some(t) => num(t, "denominator")?,
                None => RANDOM_EVICT_DENOM,
            };
            Ok(Box::new(RandomEvict::new(seed, denom)))
        }
        "flash-clear" => {
            arity(0..=1)?;
            let period = match rest.first() {
                Some(t) => num(t, "period")?,
                None => FLASH_CLEAR_PERIOD,
            };
            Ok(Box::new(FlashClear::new(period)))
        }
        "evict-at" => {
            arity(1..=usize::MAX)?;
            let ticks: Vec<u64> = rest
                .iter()
                .map(|t| num(t, "instruction count"))
                .collect::<Result<_, _>>()?;
            Ok(Box::new(EvictAt::new(ticks)))
        }
        _ => Err(format!("unknown fault policy `{s}` (try --help)")),
    }
}

/// The policy strings CI's fault matrix exercises.
pub fn fault_matrix() -> Vec<String> {
    vec![
        "default".into(),
        "always-miss".into(),
        "forced-miss".into(),
        "random:1".into(),
        "random:2".into(),
        "random:3".into(),
        "flash-clear".into(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_names() {
        for s in [
            "default",
            "always-miss",
            "forced-miss",
            "random:3",
            "random:7:4",
            "flash-clear",
            "flash-clear:128",
            "geom:8:2",
            "evict-at:5",
            "evict-at:3:9:40",
        ] {
            let p = parse_fault_policy(s).unwrap();
            assert_eq!(p.name(), s, "round-trip of `{s}`");
        }
    }

    #[test]
    fn parse_normalizes_defaults() {
        assert_eq!(
            parse_fault_policy("random:3:16").unwrap().name(),
            "random:3"
        );
        assert_eq!(
            parse_fault_policy("flash-clear:64").unwrap().name(),
            "flash-clear"
        );
        assert_eq!(parse_fault_policy("geom:32:2").unwrap().name(), "default");
        assert_eq!(
            parse_fault_policy("geom:0:2").unwrap().name(),
            "always-miss"
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in [
            "",
            "bogus",
            "random",
            "random:x",
            "random:1:2:3",
            "geom",
            "geom:8",
            "geom:a:b",
            "default:1",
            "flash-clear:p",
            "evict-at",
            "evict-at:x",
        ] {
            assert!(parse_fault_policy(s).is_err(), "`{s}` should be rejected");
        }
    }

    #[test]
    fn evict_at_fires_exactly_on_schedule() {
        let mut p = EvictAt::new(vec![2, 5, 5, 0]);
        let seq: Vec<FaultAction> = (0..6).map(|_| p.on_inst()).collect();
        assert_eq!(
            seq,
            vec![
                FaultAction::None,
                FaultAction::FlashClear,
                FaultAction::None,
                FaultAction::None,
                FaultAction::FlashClear,
                FaultAction::None,
            ]
        );
        assert_eq!(p.name(), "evict-at:2:5");
    }

    #[test]
    fn always_miss_geometry_is_empty() {
        let p = parse_fault_policy("always-miss").unwrap();
        assert_eq!(p.geometry().entries, 0);
    }

    #[test]
    fn random_policy_is_deterministic_per_seed() {
        let mut a = RandomEvict::new(3, 4);
        let mut b = RandomEvict::new(3, 4);
        let mut c = RandomEvict::new(4, 4);
        let seq =
            |p: &mut RandomEvict| -> Vec<FaultAction> { (0..256).map(|_| p.on_inst()).collect() };
        let (sa, sb, sc) = (seq(&mut a), seq(&mut b), seq(&mut c));
        assert_eq!(sa, sb, "same seed, same schedule");
        assert_ne!(sa, sc, "different seed, different schedule");
        assert!(
            sa.iter().any(|f| matches!(f, FaultAction::KillOne(_))),
            "1/4 probability must fire within 256 instructions"
        );
    }

    #[test]
    fn flash_clear_fires_on_period() {
        let mut p = FlashClear::new(3);
        let seq: Vec<FaultAction> = (0..7).map(|_| p.on_inst()).collect();
        assert_eq!(
            seq,
            vec![
                FaultAction::None,
                FaultAction::None,
                FaultAction::FlashClear,
                FaultAction::None,
                FaultAction::None,
                FaultAction::FlashClear,
                FaultAction::None,
            ]
        );
    }
}
