//! Static speculative-leak auditor, fencing transform, and the
//! constructed-eviction witness.
//!
//! The speculation-safety auditor ([`crate::audit`]) proves every
//! advanced load reaches a check; this module answers the orthogonal
//! security question: what can a *misspeculated* `ld.a`/`ld.sa` value do
//! **before** that check fires? Between the load and its check the
//! register may hold a stale value (the ALAT entry can be dropped at any
//! instruction boundary), and if that value flows into an address
//! computation or a branch condition the microarchitectural footprint is
//! attacker-observable — the transient-execution leak model of the
//! Spectre literature, specialized to data speculation.
//!
//! Three pieces:
//!
//! * [`leak_audit_func`] — a forward may-dataflow over the same CFG the
//!   speculation auditor walks. Each register maps to the set of *open
//!   speculation windows* (instruction indices of advanced loads whose
//!   check has not yet executed) that may taint it; flows into load/store/
//!   check bases ("address" sinks) and branch conditions ("branch" sinks)
//!   are reported as [`LeakSite`]s.
//! * [`fence_func`] — inserts an [`MInst::Fence`] immediately before each
//!   flagged sink (remapping branch targets), which closes every window on
//!   every path into the sink; a single pass always re-audits clean.
//! * [`construct_leak_witness`] — turns a static report into a concrete
//!   run: a probe execution locates the flagged load's dynamic position,
//!   then an `evict-at` schedule ([`crate::policy::EvictAt`]) drops the
//!   ALAT entry right after the insert, driving that exact site into
//!   misspeculation. Every static report is thus *witnessed* (taint event
//!   at the sink plus a real failed check) or *refuted* (site unreachable
//!   under the given arguments).
//!
//! The dynamic taint mode ([`crate::sim`]) uses the same frame-local
//! window model, so a program that fences clean statically reports zero
//! taint-to-sink events under every fault policy.

use crate::audit::block_starts;
use crate::isa::{LdKind, MFunc, MInst, MOperand, MProgram};
use crate::policy::{parse_fault_policy, AlatPolicy, Deterministic, EvictAt};
use crate::sim::{run_machine_taint_on, SinkClass};
use crate::target::{SpecTarget, TargetId};
use specframe_ir::Value;
use std::collections::BTreeSet;

/// One statically-detected speculative leak: the value of the advanced
/// load at `origin` can reach the sink at `at` before any check closes
/// the window.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LeakSite {
    /// Function both instructions are in.
    pub func: String,
    /// Instruction index of the sink.
    pub at: usize,
    /// Instruction index of the window-opening advanced load.
    pub origin: usize,
    /// Destination register of that load.
    pub origin_reg: u32,
    /// What the value flows into.
    pub sink: SinkClass,
}

impl core::fmt::Display for LeakSite {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "speculative leak in `{}`: advanced load into r{} at inst {} reaches {} sink at inst {} before its check",
            self.func, self.origin_reg, self.origin, self.sink, self.at
        )
    }
}

/// Per-register set of open-window origins (advanced-load instruction
/// indices).
type WinState = Vec<BTreeSet<usize>>;

fn oper_wins(st: &WinState, o: MOperand) -> BTreeSet<usize> {
    match o {
        MOperand::R(r) => st[r.0 as usize].clone(),
        _ => BTreeSet::new(),
    }
}

fn join(into: &mut WinState, from: &WinState) -> bool {
    let mut changed = false;
    for (a, b) in into.iter_mut().zip(from) {
        for p in b {
            changed |= a.insert(*p);
        }
    }
    changed
}

struct LeakWalk<'f> {
    f: &'f MFunc,
    /// `(at, origin, class)` — ordered so reports read in program order.
    sites: BTreeSet<(usize, usize, SinkClass)>,
    /// `(load, check)` pairs closed, for the audit-agreement contract.
    pairs: BTreeSet<(usize, usize)>,
}

impl LeakWalk<'_> {
    fn sink(&mut self, at: usize, ws: &BTreeSet<usize>, class: SinkClass) {
        for &o in ws {
            self.sites.insert((at, o, class));
        }
    }

    fn transfer(&mut self, st: &mut WinState, i: usize) {
        match &self.f.code[i] {
            MInst::Mov { d, s } => st[d.0 as usize] = oper_wins(st, *s),
            MInst::Un { d, a, .. } => st[d.0 as usize] = oper_wins(st, *a),
            MInst::Alu { d, a, b, .. } => {
                let mut w = oper_wins(st, *a);
                w.extend(oper_wins(st, *b));
                st[d.0 as usize] = w;
            }
            MInst::Ld { d, base, kind, .. } => {
                self.sink(i, &oper_wins(st, *base), SinkClass::Address);
                let slot = &mut st[d.0 as usize];
                slot.clear();
                if matches!(kind, LdKind::Advanced | LdKind::SpecAdvanced) {
                    slot.insert(i);
                }
            }
            MInst::Chk { d, base, .. } => {
                self.sink(i, &oper_wins(st, *base), SinkClass::Address);
                // the check resolves every open window whose load targets
                // this register — mirror the dynamic model exactly
                for regwins in st.iter_mut() {
                    regwins.retain(|&o| {
                        let closes = matches!(&self.f.code[o], MInst::Ld { d: ld, .. } if ld == d);
                        if closes {
                            self.pairs.insert((o, i));
                        }
                        !closes
                    });
                }
                st[d.0 as usize].clear();
            }
            MInst::ChkCmp { d, val, .. } => {
                // a software check verdict closes the windows of every
                // advanced load targeting the checked register, exactly
                // like `ld.c` does on an ALAT target; the verdict itself
                // is not a sink (its branch is audited as a branch sink
                // only if a windowed value reaches the condition)
                for regwins in st.iter_mut() {
                    regwins.retain(|&o| {
                        let closes =
                            matches!(&self.f.code[o], MInst::Ld { d: ld, .. } if ld == val);
                        if closes {
                            self.pairs.insert((o, i));
                        }
                        !closes
                    });
                }
                st[val.0 as usize].clear();
                st[d.0 as usize].clear();
            }
            MInst::St { base, .. } => {
                self.sink(i, &oper_wins(st, *base), SinkClass::Address);
            }
            MInst::Br { cond, .. } => {
                self.sink(i, &oper_wins(st, *cond), SinkClass::Branch);
            }
            MInst::Call { d: Some(d), .. } | MInst::Alloc { d, .. } => st[d.0 as usize].clear(),
            MInst::Fence => {
                for w in st.iter_mut() {
                    w.clear();
                }
            }
            MInst::Call { d: None, .. } | MInst::Jmp(_) | MInst::Ret(_) => {}
        }
    }
}

fn walk(f: &MFunc) -> LeakWalk<'_> {
    let mut lw = LeakWalk {
        f,
        sites: BTreeSet::new(),
        pairs: BTreeSet::new(),
    };
    let n = f.code.len();
    if n == 0 {
        return lw;
    }
    let starts = block_starts(&f.code);
    let block_of = |i: usize| -> usize { starts.partition_point(|&s| s <= i) - 1 };
    let end_of = |k: usize| -> usize { starts.get(k + 1).copied().unwrap_or(n) };
    let succs = |k: usize| -> Vec<usize> {
        let last = end_of(k) - 1;
        match &f.code[last] {
            MInst::Jmp(t) => vec![block_of(*t)],
            MInst::Br { then_, else_, .. } => vec![block_of(*then_), block_of(*else_)],
            MInst::Ret(_) => vec![],
            _ => {
                if end_of(k) < n {
                    vec![k + 1]
                } else {
                    vec![]
                }
            }
        }
    };
    let empty: WinState = vec![BTreeSet::new(); f.regs as usize];
    let mut in_states: Vec<Option<WinState>> = vec![None; starts.len()];
    in_states[0] = Some(empty);
    // worklist to fixpoint; sites/pairs are sets, so recording on every
    // visit is idempotent and the last visit sees the converged in-state
    let mut work: Vec<usize> = vec![0];
    while let Some(k) = work.pop() {
        let mut st = in_states[k].clone().expect("queued blocks have a state");
        for i in starts[k]..end_of(k) {
            lw.transfer(&mut st, i);
        }
        for s in succs(k) {
            match &mut in_states[s] {
                Some(cur) => {
                    if join(cur, &st) {
                        work.push(s);
                    }
                }
                slot @ None => {
                    *slot = Some(st.clone());
                    work.push(s);
                }
            }
        }
    }
    lw
}

fn reg_of(f: &MFunc, origin: usize) -> u32 {
    match &f.code[origin] {
        MInst::Ld { d, .. } => d.0,
        _ => unreachable!("window origins are loads"),
    }
}

/// Audits one machine function, returning every speculative-leak site in
/// program order (sink index, then origin).
pub fn leak_audit_func(f: &MFunc) -> Vec<LeakSite> {
    walk(f)
        .sites
        .into_iter()
        .map(|(at, origin, sink)| LeakSite {
            func: f.name.clone(),
            at,
            origin,
            origin_reg: reg_of(f, origin),
            sink,
        })
        .collect()
}

/// Audits every function of a lowered program, in function order.
pub fn leak_audit_program(p: &MProgram) -> Vec<LeakSite> {
    p.funcs.iter().flat_map(leak_audit_func).collect()
}

/// The `(advanced load, check)` pairs the leak auditor's window model
/// closes — the same pairing [`crate::audit::check_pairs`] proves, which
/// the two audits' agreement test pins.
pub fn leak_check_pairs(f: &MFunc) -> Vec<(usize, usize)> {
    walk(f).pairs.into_iter().collect()
}

/// Inserts a speculation barrier immediately before every flagged sink of
/// `f`, remapping branch targets so a jump to a fenced sink lands on the
/// fence. Returns the number of fences inserted. One pass suffices: every
/// path into a sink now crosses a window-closing fence last, so the
/// re-audit is clean by construction.
pub fn fence_func(f: &mut MFunc) -> u64 {
    let fence_at: BTreeSet<usize> = leak_audit_func(f).into_iter().map(|s| s.at).collect();
    if fence_at.is_empty() {
        return 0;
    }
    let n = f.code.len();
    let mut new_code: Vec<MInst> = Vec::with_capacity(n + fence_at.len());
    let mut new_index = vec![0usize; n];
    for (i, inst) in f.code.iter().enumerate() {
        new_index[i] = new_code.len();
        if fence_at.contains(&i) {
            new_code.push(MInst::Fence);
        }
        new_code.push(inst.clone());
    }
    for inst in &mut new_code {
        match inst {
            MInst::Jmp(t) => *t = new_index[*t],
            MInst::Br { then_, else_, .. } => {
                *then_ = new_index[*then_];
                *else_ = new_index[*else_];
            }
            _ => {}
        }
    }
    f.code = new_code;
    fence_at.len() as u64
}

/// Fences every function of a program; returns total fences inserted.
pub fn fence_program(p: &mut MProgram) -> u64 {
    p.funcs.iter_mut().map(fence_func).sum()
}

/// Outcome of the adversarial witness construction for one static leak
/// report.
#[derive(Debug, Clone)]
pub struct LeakWitness {
    /// The static report being validated.
    pub site: LeakSite,
    /// Policy string of the constructed eviction schedule that drove the
    /// site into a witnessed misspeculated leak; `None` when refuted.
    pub policy: Option<String>,
    /// Human-readable outcome.
    pub note: String,
}

impl LeakWitness {
    /// Whether a concrete run confirmed the static report.
    pub fn confirmed(&self) -> bool {
        self.policy.is_some()
    }
}

/// Validates one static leak report with a concrete simulator run.
///
/// A fault-free probe run records the dynamic instruction count at the
/// flagged load's first execution; an `evict-at` schedule then
/// flash-clears the ALAT on the very next instruction — after the entry
/// is inserted, before the check — forcing that site into real
/// misspeculation. The witness stands when the run records a taint event
/// at the flagged sink *and* at least one failed check (`always-miss` is
/// tried as a fallback schedule). A site the probe never reaches is
/// refuted for those arguments.
pub fn construct_leak_witness(
    prog: &MProgram,
    entry: &str,
    args: &[Value],
    fuel: u64,
    site: &LeakSite,
) -> LeakWitness {
    construct_leak_witness_on(prog, TargetId::Epic.spec(), entry, args, fuel, site)
}

/// Like [`construct_leak_witness`], but for an explicit target. On a
/// no-ALAT target the same constructed schedules poison software check
/// verdicts instead of dropping ALAT entries — the forced
/// recovery-branch miss plays the eviction's role.
pub fn construct_leak_witness_on(
    prog: &MProgram,
    target: &dyn SpecTarget,
    entry: &str,
    args: &[Value],
    fuel: u64,
    site: &LeakSite,
) -> LeakWitness {
    let refuted = |note: String| LeakWitness {
        site: site.clone(),
        policy: None,
        note,
    };
    let probe = match run_machine_taint_on(
        prog,
        target,
        entry,
        args,
        fuel,
        Box::new(Deterministic::new()),
        &[],
    ) {
        Ok(p) => p,
        Err(e) => return refuted(format!("probe run failed: {e}")),
    };
    let Some(&(_, _, dyn_at)) = probe
        .spec_trace
        .iter()
        .find(|(func, at, _)| func == &site.func && *at == site.origin)
    else {
        return refuted("flagged load never executes under these arguments — refuted".into());
    };
    let candidates = [
        EvictAt::new(vec![dyn_at + 1]).name(),
        "always-miss".to_string(),
    ];
    for policy_str in candidates {
        let policy = parse_fault_policy(&policy_str).expect("constructed policy strings parse");
        let Ok(rep) = run_machine_taint_on(prog, target, entry, args, fuel, policy, &[]) else {
            continue;
        };
        let sink_hit = rep
            .events
            .iter()
            .any(|e| e.func == site.func && e.at == site.at);
        if sink_hit && rep.counters.failed_checks > 0 {
            return LeakWitness {
                site: site.clone(),
                policy: Some(policy_str.clone()),
                note: format!(
                    "witnessed: constructed eviction `{policy_str}` drove the flagged load into \
                     misspeculation with a taint-to-sink event at inst {}",
                    site.at
                ),
            };
        }
    }
    refuted("no constructed eviction produced a misspeculated taint-to-sink run — refuted".into())
}

/// Witnesses every site of a static leak report (deterministic: probe and
/// schedules derive only from the program and arguments).
pub fn witness_leaks(
    prog: &MProgram,
    entry: &str,
    args: &[Value],
    fuel: u64,
    sites: &[LeakSite],
) -> Vec<LeakWitness> {
    witness_leaks_on(prog, TargetId::Epic.spec(), entry, args, fuel, sites)
}

/// Like [`witness_leaks`], but for an explicit target.
pub fn witness_leaks_on(
    prog: &MProgram,
    target: &dyn SpecTarget,
    entry: &str,
    args: &[Value],
    fuel: u64,
    sites: &[LeakSite],
) -> Vec<LeakWitness> {
    sites
        .iter()
        .map(|s| construct_leak_witness_on(prog, target, entry, args, fuel, s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit;
    use crate::isa::{ChkKind, Reg};
    use crate::sim::run_machine_taint;
    use specframe_ir::Ty;

    fn mf(regs: u32, code: Vec<MInst>) -> MFunc {
        MFunc {
            name: "t".into(),
            params: 0,
            regs,
            slot_words: vec![],
            code,
            promoted_regs: vec![],
        }
    }

    fn lda(d: u32, addr: i64) -> MInst {
        MInst::Ld {
            d: Reg(d),
            base: MOperand::I(addr),
            off: 0,
            ty: Ty::I64,
            kind: LdKind::Advanced,
        }
    }

    fn ldc(d: u32, addr: i64) -> MInst {
        MInst::Chk {
            d: Reg(d),
            base: MOperand::I(addr),
            off: 0,
            ty: Ty::I64,
            kind: ChkKind::Alat,
        }
    }

    #[test]
    fn clean_pair_has_no_leaks() {
        let f = mf(
            1,
            vec![
                lda(0, 16),
                ldc(0, 16),
                MInst::Ret(Some(MOperand::R(Reg(0)))),
            ],
        );
        assert!(leak_audit_func(&f).is_empty());
    }

    #[test]
    fn address_sink_before_check_is_flagged() {
        // ld.a r0; ld r1 <- [r0] (address sink!); ld.c r0
        let f = mf(
            2,
            vec![
                lda(0, 16),
                MInst::Ld {
                    d: Reg(1),
                    base: MOperand::R(Reg(0)),
                    off: 0,
                    ty: Ty::I64,
                    kind: LdKind::Normal,
                },
                ldc(0, 16),
                MInst::Ret(Some(MOperand::R(Reg(1)))),
            ],
        );
        let sites = leak_audit_func(&f);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].at, 1);
        assert_eq!(sites[0].origin, 0);
        assert_eq!(sites[0].origin_reg, 0);
        assert_eq!(sites[0].sink, SinkClass::Address);
    }

    #[test]
    fn branch_sink_through_alu_is_flagged() {
        // the window value flows through an add into a branch condition
        let f = mf(
            2,
            vec![
                lda(0, 16),
                MInst::Alu {
                    d: Reg(1),
                    op: specframe_ir::BinOp::Add,
                    a: MOperand::R(Reg(0)),
                    b: MOperand::I(1),
                },
                MInst::Br {
                    cond: MOperand::R(Reg(1)),
                    then_: 3,
                    else_: 3,
                },
                ldc(0, 16),
                MInst::Ret(None),
            ],
        );
        let sites = leak_audit_func(&f);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].sink, SinkClass::Branch);
        assert_eq!(sites[0].at, 2);
    }

    #[test]
    fn sink_after_check_is_clean() {
        let f = mf(
            2,
            vec![
                lda(0, 16),
                ldc(0, 16),
                MInst::Ld {
                    d: Reg(1),
                    base: MOperand::R(Reg(0)),
                    off: 0,
                    ty: Ty::I64,
                    kind: LdKind::Normal,
                },
                MInst::Ret(Some(MOperand::R(Reg(1)))),
            ],
        );
        assert!(leak_audit_func(&f).is_empty());
    }

    #[test]
    fn fence_clears_and_reaudits_clean() {
        let f0 = mf(
            2,
            vec![
                lda(0, 16),
                MInst::Ld {
                    d: Reg(1),
                    base: MOperand::R(Reg(0)),
                    off: 0,
                    ty: Ty::I64,
                    kind: LdKind::Normal,
                },
                ldc(0, 16),
                MInst::Ret(Some(MOperand::R(Reg(1)))),
            ],
        );
        let mut f = f0.clone();
        let inserted = fence_func(&mut f);
        assert_eq!(inserted, 1);
        assert_eq!(f.code.len(), f0.code.len() + 1);
        assert_eq!(f.code[1], MInst::Fence);
        assert!(leak_audit_func(&f).is_empty(), "re-audit must be clean");
        // the speculation-safety audit still passes on fenced code
        audit::audit_func(&f).unwrap();
    }

    #[test]
    fn fence_remaps_branch_targets_onto_fence() {
        // 0: br -> 1 / 3 ; 1: ld.a ; 2: st [r0] (sink) ; 3..: check+ret
        let f0 = mf(
            2,
            vec![
                MInst::Br {
                    cond: MOperand::I(1),
                    then_: 1,
                    else_: 2,
                },
                lda(0, 16),
                MInst::St {
                    base: MOperand::R(Reg(0)),
                    off: 0,
                    val: MOperand::I(7),
                    ty: Ty::I64,
                },
                ldc(0, 16),
                MInst::Ret(None),
            ],
        );
        let mut f = f0.clone();
        assert_eq!(fence_func(&mut f), 1);
        // the edge that jumped straight to the sink must land on the fence
        let MInst::Br { else_, .. } = &f.code[0] else {
            panic!("branch survived");
        };
        assert_eq!(f.code[*else_], MInst::Fence);
        assert!(leak_audit_func(&f).is_empty());
    }

    #[test]
    fn pairing_agrees_with_speculation_audit() {
        // straight-line, branchy, and merge-point shapes
        let shapes = vec![
            mf(
                2,
                vec![
                    lda(0, 16),
                    ldc(0, 16),
                    MInst::Ret(Some(MOperand::R(Reg(0)))),
                ],
            ),
            mf(
                3,
                vec![
                    lda(0, 16),
                    lda(1, 17),
                    ldc(1, 17),
                    ldc(0, 16),
                    MInst::Ret(None),
                ],
            ),
            mf(
                2,
                vec![
                    MInst::Br {
                        cond: MOperand::R(Reg(1)),
                        then_: 1,
                        else_: 3,
                    },
                    lda(0, 16),
                    MInst::Jmp(4),
                    lda(0, 16),
                    ldc(0, 16),
                    MInst::Ret(Some(MOperand::R(Reg(0)))),
                ],
            ),
        ];
        for f in &shapes {
            assert_eq!(
                audit::check_pairs(f),
                leak_check_pairs(f),
                "pairing disagreement in `{}`",
                f.name
            );
        }
    }

    #[test]
    fn witness_confirms_real_leak_site() {
        let f = mf(
            2,
            vec![
                lda(0, 16),
                MInst::Ld {
                    d: Reg(1),
                    base: MOperand::R(Reg(0)),
                    off: 0,
                    ty: Ty::I64,
                    kind: LdKind::Normal,
                },
                ldc(0, 16),
                MInst::Ret(Some(MOperand::R(Reg(1)))),
            ],
        );
        let p = MProgram {
            funcs: vec![f],
            global_image: vec![(16, Value::I(17)), (17, Value::I(5))],
            globals_end: 18,
        };
        let sites = leak_audit_program(&p);
        assert_eq!(sites.len(), 1);
        let w = construct_leak_witness(&p, "t", &[], 10_000, &sites[0]);
        assert!(w.confirmed(), "witness must confirm: {}", w.note);
        let policy = w.policy.unwrap();
        assert!(
            policy.starts_with("evict-at:"),
            "targeted schedule: {policy}"
        );
    }

    #[test]
    fn witness_refutes_unreachable_site() {
        // the leaky path is statically flagged but dynamically dead
        let f = mf(
            3,
            vec![
                // 0: always branch over the leak
                MInst::Br {
                    cond: MOperand::I(1),
                    then_: 4,
                    else_: 1,
                },
                lda(0, 16),
                MInst::Ld {
                    d: Reg(1),
                    base: MOperand::R(Reg(0)),
                    off: 0,
                    ty: Ty::I64,
                    kind: LdKind::Normal,
                },
                ldc(0, 16),
                MInst::Ret(None),
            ],
        );
        let p = MProgram {
            funcs: vec![f],
            global_image: vec![(16, Value::I(17)), (17, Value::I(5))],
            globals_end: 18,
        };
        let sites = leak_audit_program(&p);
        assert_eq!(sites.len(), 1);
        let w = construct_leak_witness(&p, "t", &[], 10_000, &sites[0]);
        assert!(!w.confirmed(), "dead site must be refuted: {}", w.note);
    }

    #[test]
    fn taint_sim_agrees_with_static_audit_on_fenced_code() {
        // dynamic taint mode sees zero events on statically-fenced code
        let f = mf(
            2,
            vec![
                lda(0, 16),
                MInst::Ld {
                    d: Reg(1),
                    base: MOperand::R(Reg(0)),
                    off: 0,
                    ty: Ty::I64,
                    kind: LdKind::Normal,
                },
                ldc(0, 16),
                MInst::Ret(Some(MOperand::R(Reg(1)))),
            ],
        );
        let mut p = MProgram {
            funcs: vec![f],
            global_image: vec![(16, Value::I(17)), (17, Value::I(5))],
            globals_end: 18,
        };
        let unfenced =
            run_machine_taint(&p, "t", &[], 10_000, Box::new(Deterministic::new()), &[16]).unwrap();
        assert!(unfenced.counters.leak_addr_events > 0);
        assert!(unfenced.counters.taint_loads > 0, "secret address was read");
        assert!(
            unfenced.counters.leak_secret_events > 0,
            "the leaked address value is itself secret-tainted"
        );
        let fences = fence_program(&mut p);
        assert_eq!(fences, 1);
        let fenced =
            run_machine_taint(&p, "t", &[], 10_000, Box::new(Deterministic::new()), &[16]).unwrap();
        assert_eq!(fenced.counters.leak_addr_events, 0);
        assert_eq!(fenced.counters.leak_branch_events, 0);
        assert_eq!(fenced.counters.fences_retired, 1);
        assert_eq!(
            fenced.result, unfenced.result,
            "fence is architecturally silent"
        );
        assert_eq!(
            fenced.counters.cycles,
            unfenced.counters.cycles + crate::costs::CostModel::default().fence
        );
    }
}
