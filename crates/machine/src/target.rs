//! Speculation targets: the substrate contract behind `--target`.
//!
//! The paper's framework treats data/control speculation as a policy the
//! compiler chooses per site; the *mechanism* that makes a mis-speculation
//! recoverable is a property of the target. This module abstracts that
//! mechanism behind [`SpecTarget`]:
//!
//! * **`epic`** ([`EpicTarget`]) — the IA-64 shape the rest of the crate
//!   documents: `ld.a` allocates an ALAT entry, `ld.c` consults it, a hit
//!   costs 0 cycles. Lowering hooks are all identity (one instruction in,
//!   one instruction out), so the generated code is byte-identical to the
//!   pre-trait lowering.
//! * **`swr`** ([`SwrTarget`]) — a RISC-like target with **no ALAT**.
//!   Advanced loads are checked in software: the lowering records the
//!   loaded address and a store/call *epoch* in shadow registers, and the
//!   check re-derives the address, compares both, and branches to an
//!   inline recovery reload on mismatch ([`MInst::ChkCmp`] +
//!   [`MInst::Br`] + a [`LdKind::Recovery`] load). The check is no longer
//!   free — 4 ALU ops and a branch — which flips the profitability
//!   question the driver's oracle asks per load type.
//!
//! Every consumer (codegen, simulator, auditors, fencing, fault policies,
//! fuzzdiff, CLI) takes the active target and must uphold the same
//! contracts on both: fault policies never change results, `failed_checks
//! ≤ check_loads`, check shapes close taint windows, audits pass.

use std::collections::BTreeMap;

use specframe_ir::{BinOp, Ty};

use crate::costs::CostModel;
use crate::isa::{ChkKind, LdKind, MInst, MOperand, Reg};

/// Per-function state for software-checked speculation lowering.
///
/// Targets that keep speculation bookkeeping in architectural registers
/// (no ALAT) allocate that bookkeeping here: a virtual *epoch* register
/// bumped after every store and call, and per-speculative-destination
/// shadow registers holding the recorded address and recorded epoch. A
/// hardware target leaves the frame inert (`software == false`) and every
/// hook degenerates to a single instruction.
#[derive(Debug)]
pub struct SpecFrame {
    software: bool,
    next_reg: u32,
    epoch: Option<Reg>,
    shadows: BTreeMap<u32, (Reg, Reg)>,
    scratch: Option<[Reg; 5]>,
}

impl SpecFrame {
    /// A frame whose fresh registers start at `base_regs`. `software` is
    /// whether the active target asked for software speculation state
    /// (see [`SpecTarget::software_spec_state`]).
    pub fn new(base_regs: u32, software: bool) -> Self {
        SpecFrame {
            software,
            next_reg: base_regs,
            epoch: None,
            shadows: BTreeMap::new(),
            scratch: None,
        }
    }

    /// Whether software speculation state is active for this function.
    pub fn software(&self) -> bool {
        self.software
    }

    /// Final register count, including all allocated bookkeeping.
    pub fn regs(&self) -> u32 {
        self.next_reg
    }

    /// Allocates a fresh virtual register.
    pub fn alloc(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// The epoch register (allocated on first use; zero-initialised by
    /// the calling convention like every other register).
    pub fn epoch(&mut self) -> Reg {
        if let Some(e) = self.epoch {
            return e;
        }
        let e = Reg(self.next_reg);
        self.next_reg += 1;
        self.epoch = Some(e);
        e
    }

    /// The `(recorded address, recorded epoch)` shadow pair for
    /// speculative destination `d` (allocated on first use).
    pub fn shadow(&mut self, d: Reg) -> (Reg, Reg) {
        if let Some(&pair) = self.shadows.get(&d.0) {
            return pair;
        }
        let a = Reg(self.next_reg);
        let e = Reg(self.next_reg + 1);
        self.next_reg += 2;
        self.shadows.insert(d.0, (a, e));
        (a, e)
    }

    /// One reusable bank of five scratch registers for check sequences
    /// (`[t0, t1, t2, t3, tc]`). Check sequences are straight-line, so a
    /// single bank is safe to share across every check site.
    pub fn scratch(&mut self) -> [Reg; 5] {
        if let Some(s) = self.scratch {
            return s;
        }
        let base = self.next_reg;
        self.next_reg += 5;
        let s = [
            Reg(base),
            Reg(base + 1),
            Reg(base + 2),
            Reg(base + 3),
            Reg(base + 4),
        ];
        self.scratch = Some(s);
        s
    }
}

/// The substrate contract: what a backend must provide for the framework
/// to speculate on it. See `DESIGN.md` ("SpecTarget & cost-model
/// contract") for the obligations a third backend inherits.
///
/// Lowering hooks return a *sequence* of machine instructions per source
/// instruction. Branch labels inside a returned sequence are **relative
/// to the sequence start**; one-past-the-end is a valid fall-through
/// label (a terminator always follows). The code generator concatenates
/// sequences and rebases intra-sequence labels.
pub trait SpecTarget: Sync {
    /// Short stable name (`epic`, `swr`) — the `--target` spelling.
    fn name(&self) -> &'static str;

    /// The target's cycle-cost table.
    fn costs(&self) -> CostModel;

    /// Whether the target has hardware ALAT state. Without one, `ld.c`
    /// has no hardware to consult and checks must be lowered in software.
    fn has_alat(&self) -> bool;

    /// Stable fingerprint folded into the compile-cache key. Must change
    /// whenever the target's lowering or cost table changes shape.
    fn fingerprint(&self) -> u64;

    /// Cycles a *successful* check costs on this target (the price of
    /// speculating that the oracle weighs against the saved latency).
    fn check_overhead(&self) -> u64;

    /// Extra cycles a *failed* check costs on top of the recovery reload.
    fn recovery_penalty(&self) -> u64 {
        self.costs().check_fail_penalty
    }

    /// Whether lowering must thread software speculation state (epoch +
    /// shadow registers) through functions that speculate.
    fn software_spec_state(&self) -> bool {
        !self.has_alat()
    }

    /// Lowers a load. `kind` is the speculation flavour chosen by the
    /// optimizer; plain loads pass through every target unchanged.
    fn lower_spec_load(
        &self,
        fr: &mut SpecFrame,
        d: Reg,
        base: MOperand,
        off: i64,
        ty: Ty,
        kind: LdKind,
    ) -> Vec<MInst>;

    /// Lowers a check load (`ld.c` / NaT check).
    fn lower_check(
        &self,
        fr: &mut SpecFrame,
        d: Reg,
        base: MOperand,
        off: i64,
        ty: Ty,
        kind: ChkKind,
    ) -> Vec<MInst>;

    /// Lowers a store (software targets piggyback epoch bookkeeping).
    fn lower_store(
        &self,
        fr: &mut SpecFrame,
        base: MOperand,
        off: i64,
        val: MOperand,
        ty: Ty,
    ) -> Vec<MInst>;

    /// Lowers a call (software targets piggyback epoch bookkeeping —
    /// callees may store through any pointer).
    fn lower_call(
        &self,
        fr: &mut SpecFrame,
        d: Option<Reg>,
        func: usize,
        args: Vec<MOperand>,
    ) -> Vec<MInst>;
}

/// The EPIC/IA-64 target: hardware ALAT, zero-cost successful checks.
#[derive(Debug, Clone, Copy, Default)]
pub struct EpicTarget;

impl SpecTarget for EpicTarget {
    fn name(&self) -> &'static str {
        "epic"
    }

    fn costs(&self) -> CostModel {
        CostModel::default()
    }

    fn has_alat(&self) -> bool {
        true
    }

    fn fingerprint(&self) -> u64 {
        // "EPIC" | lowering revision
        0x4550_4943_0000_0001
    }

    fn check_overhead(&self) -> u64 {
        self.costs().check_ok
    }

    fn lower_spec_load(
        &self,
        _fr: &mut SpecFrame,
        d: Reg,
        base: MOperand,
        off: i64,
        ty: Ty,
        kind: LdKind,
    ) -> Vec<MInst> {
        vec![MInst::Ld {
            d,
            base,
            off,
            ty,
            kind,
        }]
    }

    fn lower_check(
        &self,
        _fr: &mut SpecFrame,
        d: Reg,
        base: MOperand,
        off: i64,
        ty: Ty,
        kind: ChkKind,
    ) -> Vec<MInst> {
        vec![MInst::Chk {
            d,
            base,
            off,
            ty,
            kind,
        }]
    }

    fn lower_store(
        &self,
        _fr: &mut SpecFrame,
        base: MOperand,
        off: i64,
        val: MOperand,
        ty: Ty,
    ) -> Vec<MInst> {
        vec![MInst::St { base, off, val, ty }]
    }

    fn lower_call(
        &self,
        _fr: &mut SpecFrame,
        d: Option<Reg>,
        func: usize,
        args: Vec<MOperand>,
    ) -> Vec<MInst> {
        vec![MInst::Call { d, func, args }]
    }
}

/// The software-checked RISC-like target: no ALAT.
///
/// * `ld.a`/`ld.sa` keep the load itself byte-identical to `epic` (so
///   the speculation auditor's provenance and NaT-check address pairing
///   carry over) and wrap it with bookkeeping: the effective address is
///   recorded *before* the load (the destination may clobber the base)
///   and the current epoch after it.
/// * `ld.c` re-derives the address, compares address and epoch shadows,
///   and on mismatch branches to an inline recovery reload that also
///   refreshes the shadows.
/// * Stores and calls bump the epoch, conservatively invalidating every
///   outstanding speculative load, in functions that speculate.
#[derive(Debug, Clone, Copy, Default)]
pub struct SwrTarget;

impl SpecTarget for SwrTarget {
    fn name(&self) -> &'static str {
        "swr"
    }

    fn costs(&self) -> CostModel {
        CostModel {
            // A software check recovers by branching and reloading —
            // there is no hardware pipeline flush to price in, so the
            // penalty is smaller than epic's.
            check_fail_penalty: 4,
            ..CostModel::default()
        }
    }

    fn has_alat(&self) -> bool {
        false
    }

    fn fingerprint(&self) -> u64 {
        // "SWR" | lowering revision
        0x5357_5200_0000_0001
    }

    fn check_overhead(&self) -> u64 {
        // t0 = addr; t1 = addr cmp; t2 = epoch cmp; t3 = and; branch.
        let c = self.costs();
        4 * c.alu + c.check_ok + c.branch
    }

    fn lower_spec_load(
        &self,
        fr: &mut SpecFrame,
        d: Reg,
        base: MOperand,
        off: i64,
        ty: Ty,
        kind: LdKind,
    ) -> Vec<MInst> {
        let speculative = matches!(kind, LdKind::Advanced | LdKind::SpecAdvanced);
        if !fr.software() || !speculative {
            return vec![MInst::Ld {
                d,
                base,
                off,
                ty,
                kind,
            }];
        }
        let ep = fr.epoch();
        let (a_d, e_d) = fr.shadow(d);
        vec![
            // The recorded address is derived before the load: `d` may
            // alias the base register.
            MInst::Alu {
                d: a_d,
                op: BinOp::Add,
                a: base,
                b: MOperand::I(off),
            },
            MInst::Ld {
                d,
                base,
                off,
                ty,
                kind,
            },
            MInst::Mov {
                d: e_d,
                s: MOperand::R(ep),
            },
        ]
    }

    fn lower_check(
        &self,
        fr: &mut SpecFrame,
        d: Reg,
        base: MOperand,
        off: i64,
        ty: Ty,
        kind: ChkKind,
    ) -> Vec<MInst> {
        if !fr.software() || kind == ChkKind::Nat {
            // NaT deferral is a register-file property, not an ALAT one;
            // the hardware NaT check shape is kept.
            return vec![MInst::Chk {
                d,
                base,
                off,
                ty,
                kind,
            }];
        }
        let ep = fr.epoch();
        let (a_d, e_d) = fr.shadow(d);
        let [t0, t1, t2, t3, tc] = fr.scratch();
        // Labels are sequence-relative; 9 (one past the end) falls
        // through to whatever the code generator emits next.
        vec![
            MInst::Alu {
                d: t0,
                op: BinOp::Add,
                a: base,
                b: MOperand::I(off),
            },
            MInst::Alu {
                d: t1,
                op: BinOp::Eq,
                a: MOperand::R(t0),
                b: MOperand::R(a_d),
            },
            MInst::Alu {
                d: t2,
                op: BinOp::Eq,
                a: MOperand::R(ep),
                b: MOperand::R(e_d),
            },
            MInst::Alu {
                d: t3,
                op: BinOp::And,
                a: MOperand::R(t1),
                b: MOperand::R(t2),
            },
            MInst::ChkCmp {
                d: tc,
                val: d,
                cond: MOperand::R(t3),
            },
            MInst::Br {
                cond: MOperand::R(tc),
                then_: 9,
                else_: 6,
            },
            MInst::Ld {
                d,
                base: MOperand::R(t0),
                off: 0,
                ty,
                kind: LdKind::Recovery,
            },
            MInst::Mov {
                d: a_d,
                s: MOperand::R(t0),
            },
            MInst::Mov {
                d: e_d,
                s: MOperand::R(ep),
            },
        ]
    }

    fn lower_store(
        &self,
        fr: &mut SpecFrame,
        base: MOperand,
        off: i64,
        val: MOperand,
        ty: Ty,
    ) -> Vec<MInst> {
        let st = MInst::St { base, off, val, ty };
        if !fr.software() {
            return vec![st];
        }
        let ep = fr.epoch();
        vec![
            st,
            MInst::Alu {
                d: ep,
                op: BinOp::Add,
                a: MOperand::R(ep),
                b: MOperand::I(1),
            },
        ]
    }

    fn lower_call(
        &self,
        fr: &mut SpecFrame,
        d: Option<Reg>,
        func: usize,
        args: Vec<MOperand>,
    ) -> Vec<MInst> {
        let call = MInst::Call { d, func, args };
        if !fr.software() {
            return vec![call];
        }
        let ep = fr.epoch();
        vec![
            call,
            MInst::Alu {
                d: ep,
                op: BinOp::Add,
                a: MOperand::R(ep),
                b: MOperand::I(1),
            },
        ]
    }
}

static EPIC: EpicTarget = EpicTarget;
static SWR: SwrTarget = SwrTarget;

/// Identifier for a built-in target (`--target=epic|swr`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TargetId {
    /// IA-64 EPIC with a hardware ALAT (the default).
    #[default]
    Epic,
    /// Software-checked RISC-like target, no ALAT.
    Swr,
}

impl TargetId {
    /// Every built-in target.
    pub const ALL: [TargetId; 2] = [TargetId::Epic, TargetId::Swr];

    /// The target implementation.
    pub fn spec(self) -> &'static dyn SpecTarget {
        match self {
            TargetId::Epic => &EPIC,
            TargetId::Swr => &SWR,
        }
    }

    /// The `--target` spelling.
    pub fn name(self) -> &'static str {
        self.spec().name()
    }

    /// Parses a `--target` spelling.
    pub fn parse(s: &str) -> Option<TargetId> {
        match s {
            "epic" => Some(TargetId::Epic),
            "swr" => Some(TargetId::Swr),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_names_round_trip() {
        for t in TargetId::ALL {
            assert_eq!(TargetId::parse(t.name()), Some(t));
        }
        assert_eq!(TargetId::parse("itanium"), None);
        assert_eq!(TargetId::default(), TargetId::Epic);
    }

    #[test]
    fn fingerprints_are_distinct_and_stable() {
        assert_ne!(
            TargetId::Epic.spec().fingerprint(),
            TargetId::Swr.spec().fingerprint()
        );
        // Pinned: cache keys depend on these.
        assert_eq!(TargetId::Epic.spec().fingerprint(), 0x4550_4943_0000_0001);
        assert_eq!(TargetId::Swr.spec().fingerprint(), 0x5357_5200_0000_0001);
    }

    #[test]
    fn profitability_flips_per_target() {
        // On epic a successful check is free, so both load types are
        // worth speculating; on swr the check costs more than an integer
        // load saves, but less than a floating-point load.
        let epic = TargetId::Epic.spec();
        let swr = TargetId::Swr.spec();
        assert_eq!(epic.check_overhead(), 0);
        assert_eq!(swr.check_overhead(), 5);
        assert!(epic.costs().load(Ty::I64) > epic.check_overhead());
        assert!(epic.costs().load(Ty::F64) > epic.check_overhead());
        assert!(swr.costs().load(Ty::I64) <= swr.check_overhead());
        assert!(swr.costs().load(Ty::F64) > swr.check_overhead());
    }

    #[test]
    fn epic_hooks_are_identity() {
        let t = TargetId::Epic.spec();
        let mut fr = SpecFrame::new(4, t.software_spec_state());
        let seq = t.lower_spec_load(
            &mut fr,
            Reg(0),
            MOperand::R(Reg(1)),
            8,
            Ty::I64,
            LdKind::Advanced,
        );
        assert_eq!(seq.len(), 1);
        let seq = t.lower_check(
            &mut fr,
            Reg(0),
            MOperand::R(Reg(1)),
            8,
            Ty::I64,
            ChkKind::Alat,
        );
        assert_eq!(seq.len(), 1);
        let seq = t.lower_store(&mut fr, MOperand::R(Reg(1)), 0, MOperand::I(3), Ty::I64);
        assert_eq!(seq.len(), 1);
        let seq = t.lower_call(&mut fr, None, 0, vec![]);
        assert_eq!(seq.len(), 1);
        assert_eq!(fr.regs(), 4, "epic allocates no bookkeeping registers");
    }

    #[test]
    fn swr_spec_load_records_address_before_load() {
        let t = TargetId::Swr.spec();
        let mut fr = SpecFrame::new(2, t.software_spec_state());
        let seq = t.lower_spec_load(
            &mut fr,
            Reg(0),
            MOperand::R(Reg(1)),
            8,
            Ty::I64,
            LdKind::Advanced,
        );
        assert_eq!(seq.len(), 3);
        assert!(
            matches!(seq[0], MInst::Alu { op: BinOp::Add, .. }),
            "address recorded first"
        );
        assert!(
            matches!(
                seq[1],
                MInst::Ld {
                    d: Reg(0),
                    kind: LdKind::Advanced,
                    ..
                }
            ),
            "the load itself is unchanged"
        );
        // Plain loads pass through untouched even on swr.
        let seq = t.lower_spec_load(
            &mut fr,
            Reg(0),
            MOperand::R(Reg(1)),
            8,
            Ty::I64,
            LdKind::Normal,
        );
        assert_eq!(seq.len(), 1);
    }

    #[test]
    fn swr_check_is_compare_and_recovery_branch() {
        let t = TargetId::Swr.spec();
        let mut fr = SpecFrame::new(2, t.software_spec_state());
        t.lower_spec_load(
            &mut fr,
            Reg(0),
            MOperand::R(Reg(1)),
            8,
            Ty::I64,
            LdKind::Advanced,
        );
        let seq = t.lower_check(
            &mut fr,
            Reg(0),
            MOperand::R(Reg(1)),
            8,
            Ty::I64,
            ChkKind::Alat,
        );
        assert_eq!(seq.len(), 9);
        assert!(matches!(seq[4], MInst::ChkCmp { val: Reg(0), .. }));
        assert!(matches!(
            seq[5],
            MInst::Br {
                then_: 9,
                else_: 6,
                ..
            }
        ));
        assert!(matches!(
            seq[6],
            MInst::Ld {
                kind: LdKind::Recovery,
                ..
            }
        ));
        // NaT checks keep the hardware shape.
        let seq = t.lower_check(
            &mut fr,
            Reg(0),
            MOperand::R(Reg(1)),
            8,
            Ty::I64,
            ChkKind::Nat,
        );
        assert_eq!(seq.len(), 1);
    }

    #[test]
    fn swr_stores_and_calls_bump_epoch() {
        let t = TargetId::Swr.spec();
        let mut fr = SpecFrame::new(2, t.software_spec_state());
        let ep = fr.epoch();
        let seq = t.lower_store(&mut fr, MOperand::R(Reg(1)), 0, MOperand::I(3), Ty::I64);
        assert_eq!(seq.len(), 2);
        assert!(matches!(seq[1], MInst::Alu { d, op: BinOp::Add, .. } if d == ep));
        let seq = t.lower_call(&mut fr, Some(Reg(0)), 0, vec![MOperand::I(1)]);
        assert_eq!(seq.len(), 2);
        assert!(matches!(seq[1], MInst::Alu { d, op: BinOp::Add, .. } if d == ep));
    }

    #[test]
    fn spec_frame_reuses_shadows_and_scratch() {
        let mut fr = SpecFrame::new(10, true);
        let s1 = fr.shadow(Reg(3));
        let s2 = fr.shadow(Reg(3));
        assert_eq!(s1, s2);
        let b1 = fr.scratch();
        let b2 = fr.scratch();
        assert_eq!(b1, b2);
        let e1 = fr.epoch();
        let e2 = fr.epoch();
        assert_eq!(e1, e2);
        assert_eq!(fr.regs(), 10 + 2 + 5 + 1);
    }
}
