//! The EPIC target instruction set.
//!
//! A machine function is a flat instruction vector; branch targets are
//! resolved instruction indices ([`Label`]). Registers are virtual and
//! per-function (the framework does not run a register allocator; the
//! paper's register-pressure discussion is tracked by counting live
//! promoted temporaries instead — see `Counters::max_promoted_live`).

use specframe_ir::{BinOp, Ty, UnOp};

/// A virtual machine register.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u32);

impl core::fmt::Debug for Reg {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A resolved instruction index within one function.
pub type Label = usize;

/// A machine operand.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum MOperand {
    /// Register.
    R(Reg),
    /// Integer immediate (also used for resolved global addresses).
    I(i64),
    /// Float immediate.
    F(f64),
    /// Address of stack slot `slot` of the current frame (resolved to a
    /// word address at run time).
    SlotAddr(u32),
}

/// Load flavour, mirroring IA-64.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LdKind {
    /// Plain `ld`.
    Normal,
    /// `ld.a`: load + allocate an ALAT entry keyed by the destination
    /// register.
    Advanced,
    /// `ld.sa`: control-speculative advanced load — a faulting address
    /// yields NaT instead of trapping, and a successful load allocates an
    /// ALAT entry.
    SpecAdvanced,
}

/// Check flavour.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChkKind {
    /// `ld.c`: if the destination register's ALAT entry survived, done in 0
    /// cycles; otherwise re-load (and re-allocate the entry).
    Alat,
    /// NaT check with inline recovery: if the register holds NaT, re-load.
    Nat,
}

/// One machine instruction.
#[derive(Clone, PartialEq, Debug)]
pub enum MInst {
    /// `d = s`
    Mov { d: Reg, s: MOperand },
    /// `d = op a, b`
    Alu {
        d: Reg,
        op: BinOp,
        a: MOperand,
        b: MOperand,
    },
    /// `d = op a`
    Un { d: Reg, op: UnOp, a: MOperand },
    /// Load (`ld` / `ld.a` / `ld.sa`).
    Ld {
        d: Reg,
        base: MOperand,
        off: i64,
        ty: Ty,
        kind: LdKind,
    },
    /// Check load (`ld.c` / NaT check).
    Chk {
        d: Reg,
        base: MOperand,
        off: i64,
        ty: Ty,
        kind: ChkKind,
    },
    /// Store.
    St {
        base: MOperand,
        off: i64,
        val: MOperand,
        ty: Ty,
    },
    /// Call a machine function by index.
    Call {
        d: Option<Reg>,
        func: usize,
        args: Vec<MOperand>,
    },
    /// Heap allocation (runtime service; stands in for `malloc`).
    Alloc { d: Reg, words: MOperand },
    /// Speculation barrier: stalls until every in-flight advanced load is
    /// resolved, closing all open speculation windows. Never produced by
    /// lowering — inserted only by the leak-fencing transform
    /// ([`crate::leaks::fence_func`]).
    Fence,
    /// Unconditional jump.
    Jmp(Label),
    /// Conditional branch (taken when `cond != 0`).
    Br {
        cond: MOperand,
        then_: Label,
        else_: Label,
    },
    /// Return.
    Ret(Option<MOperand>),
}

/// One machine function.
#[derive(Clone, Debug)]
pub struct MFunc {
    /// Name (diagnostics).
    pub name: String,
    /// Number of parameters; arguments arrive in `r0..rN`.
    pub params: u32,
    /// Number of virtual registers used.
    pub regs: u32,
    /// Stack slot sizes, in words.
    pub slot_words: Vec<u32>,
    /// Flat instruction stream.
    pub code: Vec<MInst>,
    /// Registers that hold promoted expression temporaries (for the
    /// register-pressure proxy counter).
    pub promoted_regs: Vec<Reg>,
}

/// A lowered program.
#[derive(Clone, Debug, Default)]
pub struct MProgram {
    /// Functions; indices are call targets.
    pub funcs: Vec<MFunc>,
    /// Initial memory image for globals: `(address, value)` pairs.
    pub global_image: Vec<(i64, specframe_ir::Value)>,
    /// First address past the globals (stack region starts here).
    pub globals_end: i64,
}

impl MProgram {
    /// Looks a function up by name.
    pub fn func_by_name(&self, name: &str) -> Option<usize> {
        self.funcs.iter().position(|f| f.name == name)
    }

    /// Total instruction count.
    pub fn inst_count(&self) -> usize {
        self.funcs.iter().map(|f| f.code.len()).sum()
    }
}
