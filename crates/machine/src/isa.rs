//! The EPIC target instruction set.
//!
//! A machine function is a flat instruction vector; branch targets are
//! resolved instruction indices ([`Label`]). Registers are virtual and
//! per-function (the framework does not run a register allocator; the
//! paper's register-pressure discussion is tracked by counting live
//! promoted temporaries instead — see `Counters::max_promoted_live`).

use specframe_ir::{BinOp, Ty, UnOp};

/// A virtual machine register.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u32);

impl core::fmt::Debug for Reg {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A resolved instruction index within one function.
pub type Label = usize;

/// A machine operand.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum MOperand {
    /// Register.
    R(Reg),
    /// Integer immediate (also used for resolved global addresses).
    I(i64),
    /// Float immediate.
    F(f64),
    /// Address of stack slot `slot` of the current frame (resolved to a
    /// word address at run time).
    SlotAddr(u32),
}

/// Load flavour, mirroring IA-64.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LdKind {
    /// Plain `ld`.
    Normal,
    /// `ld.a`: load + allocate an ALAT entry keyed by the destination
    /// register.
    Advanced,
    /// `ld.sa`: control-speculative advanced load — a faulting address
    /// yields NaT instead of trapping, and a successful load allocates an
    /// ALAT entry.
    SpecAdvanced,
    /// A recovery reload emitted inside a software check sequence
    /// (no-ALAT targets). Semantically a plain `ld` — it opens no
    /// speculation window, allocates no ALAT entry and defers no fault —
    /// but kept distinct so renderings and audits can tell recovery code
    /// from user loads.
    Recovery,
}

/// Check flavour.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChkKind {
    /// `ld.c`: if the destination register's ALAT entry survived, done in 0
    /// cycles; otherwise re-load (and re-allocate the entry).
    Alat,
    /// NaT check with inline recovery: if the register holds NaT, re-load.
    Nat,
}

/// One machine instruction.
#[derive(Clone, PartialEq, Debug)]
pub enum MInst {
    /// `d = s`
    Mov { d: Reg, s: MOperand },
    /// `d = op a, b`
    Alu {
        d: Reg,
        op: BinOp,
        a: MOperand,
        b: MOperand,
    },
    /// `d = op a`
    Un { d: Reg, op: UnOp, a: MOperand },
    /// Load (`ld` / `ld.a` / `ld.sa`).
    Ld {
        d: Reg,
        base: MOperand,
        off: i64,
        ty: Ty,
        kind: LdKind,
    },
    /// Check load (`ld.c` / NaT check).
    Chk {
        d: Reg,
        base: MOperand,
        off: i64,
        ty: Ty,
        kind: ChkKind,
    },
    /// Software check verdict (no-ALAT targets): `d = cond != 0 && val
    /// is not NaT`, closing the speculation window opened by the
    /// advanced load whose destination is `val`. `cond` carries the
    /// address+epoch comparison computed by the lowered check sequence;
    /// fault policies force a miss by poisoning the verdict. Never
    /// produced when lowering for a hardware-ALAT target.
    ChkCmp { d: Reg, val: Reg, cond: MOperand },
    /// Store.
    St {
        base: MOperand,
        off: i64,
        val: MOperand,
        ty: Ty,
    },
    /// Call a machine function by index.
    Call {
        d: Option<Reg>,
        func: usize,
        args: Vec<MOperand>,
    },
    /// Heap allocation (runtime service; stands in for `malloc`).
    Alloc { d: Reg, words: MOperand },
    /// Speculation barrier: stalls until every in-flight advanced load is
    /// resolved, closing all open speculation windows. Never produced by
    /// lowering — inserted only by the leak-fencing transform
    /// ([`crate::leaks::fence_func`]).
    Fence,
    /// Unconditional jump.
    Jmp(Label),
    /// Conditional branch (taken when `cond != 0`).
    Br {
        cond: MOperand,
        then_: Label,
        else_: Label,
    },
    /// Return.
    Ret(Option<MOperand>),
}

/// One machine function.
#[derive(Clone, Debug)]
pub struct MFunc {
    /// Name (diagnostics).
    pub name: String,
    /// Number of parameters; arguments arrive in `r0..rN`.
    pub params: u32,
    /// Number of virtual registers used.
    pub regs: u32,
    /// Stack slot sizes, in words.
    pub slot_words: Vec<u32>,
    /// Flat instruction stream.
    pub code: Vec<MInst>,
    /// Registers that hold promoted expression temporaries (for the
    /// register-pressure proxy counter).
    pub promoted_regs: Vec<Reg>,
}

/// A lowered program.
#[derive(Clone, Debug, Default)]
pub struct MProgram {
    /// Functions; indices are call targets.
    pub funcs: Vec<MFunc>,
    /// Initial memory image for globals: `(address, value)` pairs.
    pub global_image: Vec<(i64, specframe_ir::Value)>,
    /// First address past the globals (stack region starts here).
    pub globals_end: i64,
}

impl MProgram {
    /// Looks a function up by name.
    pub fn func_by_name(&self, name: &str) -> Option<usize> {
        self.funcs.iter().position(|f| f.name == name)
    }

    /// Total instruction count.
    pub fn inst_count(&self) -> usize {
        self.funcs.iter().map(|f| f.code.len()).sum()
    }
}

impl core::fmt::Display for MOperand {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MOperand::R(r) => write!(f, "r{}", r.0),
            MOperand::I(v) => write!(f, "{v}"),
            MOperand::F(v) => write!(f, "{v:?}"),
            MOperand::SlotAddr(s) => write!(f, "slot{s}"),
        }
    }
}

impl LdKind {
    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            LdKind::Normal => "ld",
            LdKind::Advanced => "ld.a",
            LdKind::SpecAdvanced => "ld.sa",
            LdKind::Recovery => "ld.r",
        }
    }
}

impl core::fmt::Display for MInst {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MInst::Mov { d, s } => write!(f, "r{} = mov {s}", d.0),
            MInst::Alu { d, op, a, b } => write!(f, "r{} = {op} {a}, {b}", d.0),
            MInst::Un { d, op, a } => write!(f, "r{} = {op} {a}", d.0),
            MInst::Ld {
                d,
                base,
                off,
                ty,
                kind,
            } => write!(f, "r{} = {} [{base}+{off}] {ty}", d.0, kind.mnemonic()),
            MInst::Chk {
                d,
                base,
                off,
                ty,
                kind,
            } => {
                let m = match kind {
                    ChkKind::Alat => "ld.c",
                    ChkKind::Nat => "chk.nat",
                };
                write!(f, "r{} = {m} [{base}+{off}] {ty}", d.0)
            }
            MInst::ChkCmp { d, val, cond } => {
                write!(f, "r{} = chk.cmp r{}, pred={cond}", d.0, val.0)
            }
            MInst::St { base, off, val, ty } => write!(f, "st [{base}+{off}] = {val} {ty}"),
            MInst::Call { d, func, args } => {
                if let Some(d) = d {
                    write!(f, "r{} = call f{func}(", d.0)?;
                } else {
                    write!(f, "call f{func}(")?;
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            MInst::Alloc { d, words } => write!(f, "r{} = alloc {words}", d.0),
            MInst::Fence => write!(f, "fence"),
            MInst::Jmp(t) => write!(f, "jmp {t}"),
            MInst::Br { cond, then_, else_ } => write!(f, "br {cond} ? {then_} : {else_}"),
            MInst::Ret(Some(v)) => write!(f, "ret {v}"),
            MInst::Ret(None) => write!(f, "ret"),
        }
    }
}

/// Renders one machine function as indexed assembly text (the
/// `--emit-mach` format goldens pin).
pub fn render_mfunc(f: &MFunc) -> String {
    use core::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "mfunc {}(params={}, regs={}, slots={:?})",
        f.name, f.params, f.regs, f.slot_words
    );
    for (i, inst) in f.code.iter().enumerate() {
        let _ = writeln!(out, "  {i:>3}: {inst}");
    }
    out
}

/// Renders a lowered program ([`render_mfunc`] per function, in order).
pub fn render_mprogram(p: &MProgram) -> String {
    let mut out = String::new();
    for (i, f) in p.funcs.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&render_mfunc(f));
    }
    out
}
