//! Static speculation-safety auditor.
//!
//! The paper's correctness contract (§5) is that ignoring a speculative
//! weak update is safe *only because* every advanced load is re-validated
//! by a check instruction before its value is committed. This pass proves
//! the structural half of that contract on lowered machine code:
//!
//! * every `ld.a` / `ld.sa` (ALAT-allocating load) is followed, on some
//!   executable path, by a check on the same register — an advanced load
//!   whose value is never checked is a dropped `ld.c`;
//! * every check that can observe a reaching advanced load targets the
//!   **same address and type** as that load — a check re-executing a
//!   different load would "validate" the wrong value (the swapped-recovery
//!   corruption class);
//! * a NaT check (`chks`) never covers a plain `ld.a` — only
//!   control-speculative `ld.sa` values can hold NaT, so a NaT check over
//!   a non-speculative load silently skips ALAT validation.
//!
//! The analysis is a forward may-dataflow over the flat instruction
//! stream: each register maps to the set of advanced-load *provenances*
//! (origin index, address, flavour) that may reach it; joins are unions,
//! so one check at a merge point validates the loads of every incoming
//! path. Only reachable blocks participate — dead code cannot
//! mis-speculate.

use crate::isa::{ChkKind, LdKind, MFunc, MInst, MOperand, MProgram};
use specframe_ir::Ty;
use std::collections::BTreeSet;

/// An audit failure, anchored to one instruction of one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditError {
    /// Function the failure is in.
    pub func: String,
    /// Flat instruction index of the offending load or check.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl core::fmt::Display for AuditError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "speculation audit failed in `{}` at inst {}: {}",
            self.func, self.at, self.msg
        )
    }
}

impl std::error::Error for AuditError {}

/// What one audit proved (for `--audit-spec` reporting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AuditStats {
    /// ALAT-allocating loads (`ld.a` + `ld.sa`) proven checked.
    pub advanced_loads: u64,
    /// Check instructions audited.
    pub checks: u64,
}

impl AuditStats {
    /// Merges another stats block into this one.
    pub fn absorb(&mut self, other: &AuditStats) {
        self.advanced_loads += other.advanced_loads;
        self.checks += other.checks;
    }
}

/// An address key: `MOperand` minus the float payload (floats cannot be
/// load bases; bit-keyed so the set types stay total orders).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum BaseKey {
    R(u32),
    I(i64),
    Slot(u32),
    F(u64),
}

fn base_key(o: MOperand) -> BaseKey {
    match o {
        MOperand::R(r) => BaseKey::R(r.0),
        MOperand::I(i) => BaseKey::I(i),
        MOperand::SlotAddr(s) => BaseKey::Slot(s),
        MOperand::F(f) => BaseKey::F(f.to_bits()),
    }
}

fn ty_code(t: Ty) -> u8 {
    match t {
        Ty::I64 => 0,
        Ty::F64 => 1,
        Ty::Ptr => 2,
    }
}

fn ty_name(c: u8) -> &'static str {
    match c {
        0 => "i64",
        1 => "f64",
        _ => "ptr",
    }
}

/// One advanced load that may reach a register: where it is and what it
/// loaded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Prov {
    origin: usize,
    base: BaseKey,
    off: i64,
    ty: u8,
    spec: bool,
}

type RegState = Vec<BTreeSet<Prov>>;

fn join(into: &mut RegState, from: &RegState) -> bool {
    let mut changed = false;
    for (a, b) in into.iter_mut().zip(from) {
        for p in b {
            changed |= a.insert(*p);
        }
    }
    changed
}

/// Applies one instruction to the provenance state. When `errors` is
/// given (the post-fixpoint sweep), mismatched checks are reported there.
fn transfer(
    st: &mut RegState,
    i: usize,
    inst: &MInst,
    checked: &mut BTreeSet<(usize, usize)>,
    mut errors: Option<&mut Vec<(usize, String)>>,
) {
    match inst {
        MInst::Mov { d, .. }
        | MInst::Alu { d, .. }
        | MInst::Un { d, .. }
        | MInst::Alloc { d, .. }
        | MInst::Call { d: Some(d), .. } => st[d.0 as usize].clear(),
        MInst::Ld {
            d,
            base,
            off,
            ty,
            kind,
        } => {
            let slot = &mut st[d.0 as usize];
            slot.clear();
            if let LdKind::Advanced | LdKind::SpecAdvanced = kind {
                slot.insert(Prov {
                    origin: i,
                    base: base_key(*base),
                    off: *off,
                    ty: ty_code(*ty),
                    spec: matches!(kind, LdKind::SpecAdvanced),
                });
            }
        }
        MInst::Chk {
            d,
            base,
            off,
            ty,
            kind,
        } => {
            let here = (base_key(*base), *off, ty_code(*ty));
            for p in &st[d.0 as usize] {
                if (p.base, p.off, p.ty) != here {
                    if let Some(errs) = errors.as_deref_mut() {
                        errs.push((
                            i,
                            format!(
                                "check on r{} re-executes [{:?}+{}] {} but the reaching \
                                 advanced load at inst {} loaded [{:?}+{}] {}",
                                d.0,
                                here.0,
                                here.1,
                                ty_name(here.2),
                                p.origin,
                                p.base,
                                p.off,
                                ty_name(p.ty)
                            ),
                        ));
                    }
                } else if matches!(kind, ChkKind::Nat) && !p.spec {
                    if let Some(errs) = errors.as_deref_mut() {
                        errs.push((
                            i,
                            format!(
                                "NaT check on r{} covers the plain ld.a at inst {} — \
                                 ALAT validation is skipped",
                                d.0, p.origin
                            ),
                        ));
                    }
                } else {
                    checked.insert((p.origin, i));
                }
            }
            st[d.0 as usize].clear();
        }
        MInst::ChkCmp { d, val, .. } => {
            // software check verdict: validates every advanced load
            // reaching `val` by register identity. Address agreement is
            // enforced *dynamically* by the compare the sequence computed
            // — a stale address simply misses and takes the recovery
            // reload, so there is no swapped-recovery class to flag here.
            let pairs: Vec<usize> = st[val.0 as usize].iter().map(|p| p.origin).collect();
            for o in pairs {
                checked.insert((o, i));
            }
            st[val.0 as usize].clear();
            st[d.0 as usize].clear();
        }
        // a fence stalls until in-flight loads resolve but does not
        // validate their values — check pairing is unaffected
        MInst::Call { d: None, .. }
        | MInst::St { .. }
        | MInst::Fence
        | MInst::Jmp(_)
        | MInst::Br { .. }
        | MInst::Ret(_) => {}
    }
}

/// Block boundaries of the flat stream: `starts[k]` is the first
/// instruction of block `k`, blocks are maximal single-entry runs.
/// Shared with the leak auditor ([`crate::leaks`]), which walks the same
/// CFG with a different lattice.
pub(crate) fn block_starts(code: &[MInst]) -> Vec<usize> {
    let n = code.len();
    let mut leader = vec![false; n];
    if n > 0 {
        leader[0] = true;
    }
    for (i, inst) in code.iter().enumerate() {
        let mut next_leads = false;
        match inst {
            MInst::Jmp(t) => {
                leader[*t] = true;
                next_leads = true;
            }
            MInst::Br { then_, else_, .. } => {
                leader[*then_] = true;
                leader[*else_] = true;
                next_leads = true;
            }
            MInst::Ret(_) => next_leads = true,
            _ => {}
        }
        if next_leads && i + 1 < n {
            leader[i + 1] = true;
        }
    }
    (0..n).filter(|&i| leader[i]).collect()
}

/// Fixpoint of the provenance dataflow: block starts, the per-block
/// in-states of reachable blocks, and the `(load, check)` pairs observed.
#[allow(clippy::type_complexity)]
fn provenance_fixpoint(f: &MFunc) -> (Vec<usize>, Vec<Option<RegState>>, BTreeSet<(usize, usize)>) {
    let n = f.code.len();
    let starts = block_starts(&f.code);
    let block_of = |i: usize| -> usize { starts.partition_point(|&s| s <= i) - 1 };
    let end_of = |k: usize| -> usize { starts.get(k + 1).copied().unwrap_or(n) };
    let succs = |k: usize| -> Vec<usize> {
        let last = end_of(k) - 1;
        match &f.code[last] {
            MInst::Jmp(t) => vec![block_of(*t)],
            MInst::Br { then_, else_, .. } => vec![block_of(*then_), block_of(*else_)],
            MInst::Ret(_) => vec![],
            // block split by an incoming edge: falls through
            _ => {
                if end_of(k) < n {
                    vec![k + 1]
                } else {
                    vec![]
                }
            }
        }
    };

    let empty: RegState = vec![BTreeSet::new(); f.regs as usize];
    let mut in_states: Vec<Option<RegState>> = vec![None; starts.len()];
    in_states[0] = Some(empty.clone());
    let mut checked: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut work: Vec<usize> = vec![0];
    while let Some(k) = work.pop() {
        let mut st = in_states[k].clone().expect("queued blocks have a state");
        for i in starts[k]..end_of(k) {
            transfer(&mut st, i, &f.code[i], &mut checked, None);
        }
        for s in succs(k) {
            match &mut in_states[s] {
                Some(cur) => {
                    if join(cur, &st) {
                        work.push(s);
                    }
                }
                slot @ None => {
                    *slot = Some(st.clone());
                    work.push(s);
                }
            }
        }
    }
    (starts, in_states, checked)
}

/// The `(advanced load index, check index)` pairs the speculation-safety
/// audit proves, in address order. This is the pairing the leak audit
/// ([`crate::leaks`]) must agree with — the agreement is unit-tested.
pub fn check_pairs(f: &MFunc) -> Vec<(usize, usize)> {
    if f.code.is_empty() {
        return Vec::new();
    }
    let (_, _, checked) = provenance_fixpoint(f);
    checked.into_iter().collect()
}

/// Audits one machine function.
///
/// # Errors
/// Returns the first (lowest-index) violation.
pub fn audit_func(f: &MFunc) -> Result<AuditStats, AuditError> {
    let n = f.code.len();
    let fail = |(at, msg): (usize, String)| AuditError {
        func: f.name.clone(),
        at,
        msg,
    };
    if n == 0 {
        return Ok(AuditStats::default());
    }
    let (starts, in_states, mut checked) = provenance_fixpoint(f);
    let end_of = |k: usize| -> usize { starts.get(k + 1).copied().unwrap_or(n) };

    // post-fixpoint sweep: replay each reachable block from its final
    // in-state, recording pairing violations in address order
    let mut errors: Vec<(usize, String)> = Vec::new();
    let mut stats = AuditStats::default();
    for (k, state) in in_states.iter().enumerate() {
        let Some(state) = state else { continue };
        let mut st = state.clone();
        for i in starts[k]..end_of(k) {
            if matches!(&f.code[i], MInst::Chk { .. } | MInst::ChkCmp { .. }) {
                stats.checks += 1;
            }
            transfer(&mut st, i, &f.code[i], &mut checked, Some(&mut errors));
        }
    }
    // every reachable ALAT-allocating load must be validated by at least
    // one matching check on some path (dropped-`ld.c` detection)
    for (k, state) in in_states.iter().enumerate() {
        if state.is_none() {
            continue;
        }
        for i in starts[k]..end_of(k) {
            if let MInst::Ld { d, kind, .. } = &f.code[i] {
                if matches!(kind, LdKind::Advanced | LdKind::SpecAdvanced) {
                    stats.advanced_loads += 1;
                    if !checked.iter().any(|&(o, _)| o == i) {
                        errors.push((
                            i,
                            format!(
                                "advanced load into r{} is never validated by a matching \
                                 check (dropped ld.c/chk)",
                                d.0
                            ),
                        ));
                    }
                }
            }
        }
    }
    // pairing violations (collected first, in address order) outrank
    // dropped-check reports: a mispaired check usually explains why its
    // load also shows as unvalidated
    match errors.into_iter().next() {
        Some(e) => Err(fail(e)),
        None => Ok(stats),
    }
}

/// Audits every function of a lowered program.
///
/// # Errors
/// Returns the first violation, in function order.
pub fn audit_program(p: &MProgram) -> Result<AuditStats, AuditError> {
    let mut stats = AuditStats::default();
    for f in &p.funcs {
        stats.absorb(&audit_func(f)?);
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Reg;

    fn mf(regs: u32, code: Vec<MInst>) -> MFunc {
        MFunc {
            name: "t".into(),
            params: 0,
            regs,
            slot_words: vec![],
            code,
            promoted_regs: vec![],
        }
    }

    #[test]
    fn paired_advanced_load_passes() {
        let f = mf(
            2,
            vec![
                MInst::Ld {
                    d: Reg(0),
                    base: MOperand::I(16),
                    off: 0,
                    ty: Ty::I64,
                    kind: LdKind::Advanced,
                },
                MInst::St {
                    base: MOperand::I(17),
                    off: 0,
                    val: MOperand::I(7),
                    ty: Ty::I64,
                },
                MInst::Chk {
                    d: Reg(0),
                    base: MOperand::I(16),
                    off: 0,
                    ty: Ty::I64,
                    kind: ChkKind::Alat,
                },
                MInst::Ret(Some(MOperand::R(Reg(0)))),
            ],
        );
        let s = audit_func(&f).unwrap();
        assert_eq!(s.advanced_loads, 1);
        assert_eq!(s.checks, 1);
    }

    #[test]
    fn dropped_check_is_flagged() {
        let f = mf(
            1,
            vec![
                MInst::Ld {
                    d: Reg(0),
                    base: MOperand::I(16),
                    off: 0,
                    ty: Ty::I64,
                    kind: LdKind::Advanced,
                },
                MInst::Ret(Some(MOperand::R(Reg(0)))),
            ],
        );
        let e = audit_func(&f).unwrap_err();
        assert_eq!(e.at, 0);
        assert!(e.msg.contains("never validated"), "{e}");
    }

    #[test]
    fn swapped_check_address_is_flagged() {
        let f = mf(
            1,
            vec![
                MInst::Ld {
                    d: Reg(0),
                    base: MOperand::I(16),
                    off: 0,
                    ty: Ty::I64,
                    kind: LdKind::Advanced,
                },
                MInst::Chk {
                    d: Reg(0),
                    base: MOperand::I(99),
                    off: 0,
                    ty: Ty::I64,
                    kind: ChkKind::Alat,
                },
                MInst::Ret(Some(MOperand::R(Reg(0)))),
            ],
        );
        let e = audit_func(&f).unwrap_err();
        assert_eq!(e.at, 1);
        assert!(e.msg.contains("re-executes"), "{e}");
    }

    #[test]
    fn nat_check_over_plain_advanced_load_is_flagged() {
        let f = mf(
            1,
            vec![
                MInst::Ld {
                    d: Reg(0),
                    base: MOperand::I(16),
                    off: 0,
                    ty: Ty::I64,
                    kind: LdKind::Advanced,
                },
                MInst::Chk {
                    d: Reg(0),
                    base: MOperand::I(16),
                    off: 0,
                    ty: Ty::I64,
                    kind: ChkKind::Nat,
                },
                MInst::Ret(Some(MOperand::R(Reg(0)))),
            ],
        );
        let e = audit_func(&f).unwrap_err();
        assert!(e.msg.contains("NaT check"), "{e}");
    }

    #[test]
    fn merge_point_check_covers_both_paths() {
        // two ld.a's of the same address on different paths, one check
        // after the merge: both loads are validated
        let f = mf(
            2,
            vec![
                // 0: br r1, 1, 3
                MInst::Br {
                    cond: MOperand::R(Reg(1)),
                    then_: 1,
                    else_: 3,
                },
                // 1: ld.a r0
                MInst::Ld {
                    d: Reg(0),
                    base: MOperand::I(16),
                    off: 0,
                    ty: Ty::I64,
                    kind: LdKind::Advanced,
                },
                // 2: jmp 4
                MInst::Jmp(4),
                // 3: ld.a r0 (other path)
                MInst::Ld {
                    d: Reg(0),
                    base: MOperand::I(16),
                    off: 0,
                    ty: Ty::I64,
                    kind: LdKind::Advanced,
                },
                // 4: ld.c r0
                MInst::Chk {
                    d: Reg(0),
                    base: MOperand::I(16),
                    off: 0,
                    ty: Ty::I64,
                    kind: ChkKind::Alat,
                },
                MInst::Ret(Some(MOperand::R(Reg(0)))),
            ],
        );
        let s = audit_func(&f).unwrap();
        assert_eq!(s.advanced_loads, 2);
    }

    #[test]
    fn unreachable_code_is_ignored() {
        let f = mf(
            1,
            vec![
                MInst::Ret(None),
                // dead: an unchecked ld.a that can never execute
                MInst::Ld {
                    d: Reg(0),
                    base: MOperand::I(16),
                    off: 0,
                    ty: Ty::I64,
                    kind: LdKind::Advanced,
                },
                MInst::Ret(None),
            ],
        );
        audit_func(&f).unwrap();
    }
}
