//! Property tests for the dominator computation: the CHK iterative
//! algorithm must agree with a naive path-based oracle on random CFGs.

use proptest::prelude::*;
use specframe_analysis::{DomFrontiers, DomTree};
use specframe_ir::{BlockId, ModuleBuilder, Operand, Terminator, Ty};

/// Builds a function with `n` blocks and the given edge list (pairs of
/// block indices). Each block gets a terminator covering its out-edges:
/// 0 succs = ret, 1 = jmp, 2 = br, >2 edges are truncated to 2.
fn build_cfg(n: usize, edges: &[(usize, usize)]) -> specframe_ir::Module {
    let mut mb = ModuleBuilder::new();
    let f = mb.declare_func("t", &[("x", Ty::I64)], None);
    {
        let mut fb = mb.define(f);
        for i in 1..n {
            fb.block(format!("b{i}"));
        }
        fb.ret(None); // seal entry temporarily; fixed below
    }
    let mut m = mb.finish();
    let func = &mut m.funcs[0];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in edges {
        let (a, b) = (a % n, b % n);
        if succs[a].len() < 2 && !succs[a].contains(&b) {
            succs[a].push(b);
        }
    }
    for (i, s) in succs.iter().enumerate() {
        func.blocks[i].term = match s.len() {
            0 => Terminator::Ret(None),
            1 => Terminator::Jump(BlockId(s[0] as u32)),
            _ => Terminator::Br {
                cond: Operand::Var(specframe_ir::VarId(0)),
                then_: BlockId(s[0] as u32),
                else_: BlockId(s[1] as u32),
            },
        };
    }
    m
}

/// Naive dominance: `a` dominates `b` iff removing `a` makes `b`
/// unreachable from the entry (or a == b).
fn naive_dominates(f: &specframe_ir::Function, a: BlockId, b: BlockId) -> bool {
    if a == b {
        return true;
    }
    // reachability avoiding `a`
    let mut seen = vec![false; f.blocks.len()];
    let entry = f.entry();
    if entry == a {
        return entry != b; // entry dominates everything except... it IS entry
    }
    let mut stack = vec![entry];
    seen[entry.index()] = true;
    while let Some(x) = stack.pop() {
        for s in f.block(x).term.successors() {
            if s != a && !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
    }
    !seen[b.index()]
}

fn reachable(f: &specframe_ir::Function) -> Vec<bool> {
    let mut seen = vec![false; f.blocks.len()];
    let mut stack = vec![f.entry()];
    seen[0] = true;
    while let Some(x) = stack.pop() {
        for s in f.block(x).term.successors() {
            if !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
    }
    seen
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn chk_matches_naive_oracle(
        n in 2usize..10,
        edges in proptest::collection::vec((0usize..10, 0usize..10), 1..25)
    ) {
        let m = build_cfg(n, &edges);
        let f = &m.funcs[0];
        let dt = DomTree::compute(f);
        let reach = reachable(f);
        for a in 0..n {
            for b in 0..n {
                let (ba, bb) = (BlockId(a as u32), BlockId(b as u32));
                if !reach[a] || !reach[b] {
                    continue;
                }
                prop_assert_eq!(
                    dt.dominates(ba, bb),
                    naive_dominates(f, ba, bb),
                    "dominates({}, {}) mismatch", a, b
                );
            }
        }
        // idom really is the closest strict dominator
        for b in 1..n {
            if !reach[b] {
                continue;
            }
            let bb = BlockId(b as u32);
            if let Some(id) = dt.idom(bb) {
                prop_assert!(naive_dominates(f, id, bb));
                // no other strict dominator sits between idom and b
                for (c, &rc) in reach.iter().enumerate().take(n) {
                    let bc = BlockId(c as u32);
                    if rc && bc != bb && bc != id && naive_dominates(f, bc, bb) {
                        prop_assert!(
                            naive_dominates(f, bc, id),
                            "{} strictly dominates {} but not idom {}", c, b, id.0
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn dominance_frontier_definition_holds(
        n in 2usize..10,
        edges in proptest::collection::vec((0usize..10, 0usize..10), 1..25)
    ) {
        let m = build_cfg(n, &edges);
        let f = &m.funcs[0];
        let dt = DomTree::compute(f);
        let df = DomFrontiers::compute(f, &dt);
        let reach = reachable(f);
        let preds = f.predecessors();
        // y in DF(x) iff x dominates a predecessor of y but not strictly y
        for x in 0..n {
            if !reach[x] { continue; }
            let bx = BlockId(x as u32);
            for y in 0..n {
                if !reach[y] { continue; }
                let by = BlockId(y as u32);
                // the implementation records only join blocks (>= 2
                // predecessors): single-pred blocks never need a phi, so
                // they are omitted from frontiers by construction
                let expected = preds[y].len() >= 2
                    && preds[y]
                        .iter()
                        .filter(|p| reach[p.index()])
                        .any(|&p| dt.dominates(bx, p))
                    && !dt.strictly_dominates(bx, by);
                prop_assert_eq!(
                    df.of(bx).contains(&by),
                    expected,
                    "DF({}) membership of {} wrong", x, y
                );
            }
        }
    }
}
