//! Edge profiles and static branch heuristics.
//!
//! The paper's framework (Figure 3) consumes *edge/path profiles or
//! heuristic rules* for control speculation. [`EdgeProfile`] is the shared
//! representation: the dynamic profiler in `specframe-profile` fills one in
//! by execution, and [`estimate_profile`] synthesizes one from Ball–Larus
//! style static heuristics (back edges are taken, loop exits are not) when
//! no profiling run is available.

use crate::dom::DomTree;
use crate::loops::LoopInfo;
use specframe_ir::{BlockId, FuncId, Function, Module, Terminator};
use std::collections::HashMap;

/// Execution counts for CFG edges and function entries.
#[derive(Debug, Clone, Default)]
pub struct EdgeProfile {
    edges: HashMap<(FuncId, BlockId, BlockId), u64>,
    entries: HashMap<FuncId, u64>,
}

impl EdgeProfile {
    /// An empty profile.
    pub fn new() -> EdgeProfile {
        EdgeProfile::default()
    }

    /// Records one traversal of `from -> to` in function `f`.
    pub fn record_edge(&mut self, f: FuncId, from: BlockId, to: BlockId) {
        *self.edges.entry((f, from, to)).or_insert(0) += 1;
    }

    /// Records one entry into function `f`.
    pub fn record_entry(&mut self, f: FuncId) {
        *self.entries.entry(f).or_insert(0) += 1;
    }

    /// Adds `n` traversals of an edge (used by the static estimator).
    pub fn add_edge(&mut self, f: FuncId, from: BlockId, to: BlockId, n: u64) {
        *self.edges.entry((f, from, to)).or_insert(0) += n;
    }

    /// Sets the entry count of `f`.
    pub fn set_entry(&mut self, f: FuncId, n: u64) {
        self.entries.insert(f, n);
    }

    /// The recorded count of edge `from -> to`.
    pub fn edge_count(&self, f: FuncId, from: BlockId, to: BlockId) -> u64 {
        self.edges.get(&(f, from, to)).copied().unwrap_or(0)
    }

    /// The recorded entry count of `f`.
    pub fn entry_count(&self, f: FuncId) -> u64 {
        self.entries.get(&f).copied().unwrap_or(0)
    }

    /// Block execution frequencies: entry count for the entry block,
    /// incoming-edge sum for every other block.
    pub fn block_freqs(&self, fid: FuncId, f: &Function) -> Vec<u64> {
        let mut freq = vec![0u64; f.blocks.len()];
        freq[f.entry().index()] = self.entry_count(fid);
        for b in f.block_ids() {
            for s in f.block(b).term.successors() {
                freq[s.index()] += self.edge_count(fid, b, s);
            }
        }
        freq
    }

    /// The probability (0..=1) that control leaves `from` along the edge to
    /// `to`, out of all recorded out-edges of `from`. Returns `None` when
    /// the block was never exited in this profile.
    pub fn edge_probability(
        &self,
        fid: FuncId,
        f: &Function,
        from: BlockId,
        to: BlockId,
    ) -> Option<f64> {
        let total: u64 = f
            .block(from)
            .term
            .successors()
            .iter()
            .map(|&s| self.edge_count(fid, from, s))
            .sum();
        if total == 0 {
            None
        } else {
            Some(self.edge_count(fid, from, to) as f64 / total as f64)
        }
    }

    /// Whether the profile contains any data for function `fid`.
    pub fn covers(&self, fid: FuncId) -> bool {
        self.entry_count(fid) > 0
    }
}

/// Nominal entry count assigned to every function by the static estimator.
pub const STATIC_ENTRY: u64 = 1_000;

/// Loop-body multiplier assumed by the static estimator: a back edge is
/// predicted taken with probability 0.9, i.e. loops run ~10 iterations.
pub const STATIC_LOOP_TRIPS: u64 = 10;

/// Builds an [`EdgeProfile`] from static heuristics, without executing the
/// program (the "heuristic rules" control-speculation source of Figure 3).
///
/// Heuristics, in priority order, for each 2-way branch:
/// 1. an edge that is a loop back edge gets probability 0.9;
/// 2. an edge that exits the innermost loop of the branch gets 0.1;
/// 3. otherwise both edges get 0.5.
///
/// Block frequencies are then `STATIC_ENTRY * STATIC_LOOP_TRIPS^depth`,
/// which is exact for reducible single-exit loops under the above
/// probabilities and close enough elsewhere for speculation decisions.
pub fn estimate_profile(m: &Module) -> EdgeProfile {
    let mut p = EdgeProfile::new();
    for (i, f) in m.funcs.iter().enumerate() {
        let dt = DomTree::compute(f);
        let li = LoopInfo::compute(f, &dt);
        estimate_function(&mut p, FuncId::from_index(i), f, &dt, &li);
    }
    p
}

/// [`estimate_profile`] over pre-computed per-function analyses (one entry
/// per function, in index order). Used by the optimization driver so the
/// static estimator shares the pipeline's analysis cache instead of
/// rebuilding dominators and loops per function.
pub fn estimate_profile_with(m: &Module, fas: &[crate::cache::FuncAnalyses]) -> EdgeProfile {
    assert_eq!(m.funcs.len(), fas.len(), "one FuncAnalyses per function");
    let mut p = EdgeProfile::new();
    for (i, (f, fa)) in m.funcs.iter().zip(fas).enumerate() {
        estimate_function_with(&mut p, FuncId::from_index(i), f, fa);
    }
    p
}

/// Single-function slice of [`estimate_profile_with`], accumulating into
/// `p`. The optimization driver's incremental-cache path estimates only
/// the functions it is actually going to recompile — a cache hit replays
/// its stored lowering and never consults the static profile.
pub fn estimate_function_with(
    p: &mut EdgeProfile,
    fid: FuncId,
    f: &Function,
    fa: &crate::cache::FuncAnalyses,
) {
    estimate_function(p, fid, f, &fa.dt, &fa.loops);
}

fn estimate_function(p: &mut EdgeProfile, fid: FuncId, f: &Function, dt: &DomTree, li: &LoopInfo) {
    p.set_entry(fid, STATIC_ENTRY);
    for b in f.block_ids() {
        if !dt.is_reachable(b) {
            continue;
        }
        let freq = STATIC_ENTRY * STATIC_LOOP_TRIPS.pow(li.depth(b));
        match &f.block(b).term {
            Terminator::Jump(t) => p.add_edge(fid, b, *t, freq),
            Terminator::Br { then_, else_, .. } => {
                let prob_then = branch_prob(li, b, *then_, *else_);
                let t_count = (freq as f64 * prob_then) as u64;
                p.add_edge(fid, b, *then_, t_count);
                p.add_edge(fid, b, *else_, freq - t_count);
            }
            Terminator::Ret(_) => {}
        }
    }
}

fn branch_prob(li: &LoopInfo, from: BlockId, then_: BlockId, else_: BlockId) -> f64 {
    let back_t = li.is_back_edge(from, then_);
    let back_e = li.is_back_edge(from, else_);
    if back_t && !back_e {
        return 0.9;
    }
    if back_e && !back_t {
        return 0.1;
    }
    // loop-exit heuristic: prefer the successor that stays at (or deepens)
    // the current nesting depth
    let d = li.depth(from);
    let exit_t = li.depth(then_) < d;
    let exit_e = li.depth(else_) < d;
    if exit_t && !exit_e {
        return 0.1;
    }
    if exit_e && !exit_t {
        return 0.9;
    }
    0.5
}

#[cfg(test)]
mod tests {
    use super::*;
    use specframe_ir::{ModuleBuilder, Ty};

    fn loop_module() -> Module {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_func("l", &[("x", Ty::I64)], None);
        {
            let mut fb = mb.define(f);
            let x = fb.param(0);
            let head = fb.block("head");
            let body = fb.block("body");
            let exit = fb.block("exit");
            fb.jmp(head);
            fb.switch_to(head);
            fb.br(x.into(), body, exit);
            fb.switch_to(body);
            fb.jmp(head);
            fb.switch_to(exit);
            fb.ret(None);
        }
        mb.finish()
    }

    #[test]
    fn record_and_query() {
        let mut p = EdgeProfile::new();
        let f = FuncId(0);
        p.record_entry(f);
        p.record_edge(f, BlockId(0), BlockId(1));
        p.record_edge(f, BlockId(0), BlockId(1));
        p.record_edge(f, BlockId(0), BlockId(2));
        assert_eq!(p.edge_count(f, BlockId(0), BlockId(1)), 2);
        assert_eq!(p.entry_count(f), 1);
        assert!(p.covers(f));
        assert!(!p.covers(FuncId(1)));
    }

    #[test]
    fn probabilities_normalize() {
        let m = loop_module();
        let mut p = EdgeProfile::new();
        let f = FuncId(0);
        for _ in 0..9 {
            p.record_edge(f, BlockId(1), BlockId(2));
        }
        p.record_edge(f, BlockId(1), BlockId(3));
        let pr = p
            .edge_probability(f, &m.funcs[0], BlockId(1), BlockId(2))
            .unwrap();
        assert!((pr - 0.9).abs() < 1e-9);
        assert!(p
            .edge_probability(f, &m.funcs[0], BlockId(2), BlockId(1))
            .is_none());
    }

    #[test]
    fn static_estimate_prefers_loop_body() {
        let m = loop_module();
        let p = estimate_profile(&m);
        let f = FuncId(0);
        let to_body = p.edge_count(f, BlockId(1), BlockId(2));
        let to_exit = p.edge_count(f, BlockId(1), BlockId(3));
        assert!(to_body > to_exit * 5, "{to_body} vs {to_exit}");
        let freqs = p.block_freqs(f, &m.funcs[0]);
        assert_eq!(freqs[0], STATIC_ENTRY);
        assert!(freqs[2] > freqs[3]);
    }

    #[test]
    fn block_freqs_sum_incoming() {
        let m = loop_module();
        let mut p = EdgeProfile::new();
        let f = FuncId(0);
        p.set_entry(f, 5);
        p.add_edge(f, BlockId(0), BlockId(1), 5);
        p.add_edge(f, BlockId(2), BlockId(1), 45);
        let freqs = p.block_freqs(f, &m.funcs[0]);
        assert_eq!(freqs[1], 50);
    }
}
