//! Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm.

use crate::cfg::reverse_postorder;
use specframe_ir::{BlockId, Function};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of [`DomTree::compute`] invocations.
///
/// Observability hook for the pipeline's analysis cache: the driver samples
/// this before and after an `optimize` call to assert dominators are built
/// at most once per function on the no-CFG-edit path.
static DOM_COMPUTES: AtomicU64 = AtomicU64::new(0);

/// The current value of the process-wide [`DomTree::compute`] counter.
pub fn dom_compute_count() -> u64 {
    DOM_COMPUTES.load(Ordering::Relaxed)
}

/// The dominator tree of one function.
///
/// Unreachable blocks have no `idom` and are excluded from every order.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator per block (`None` for the entry and unreachable
    /// blocks).
    idom: Vec<Option<BlockId>>,
    /// Children in the dominator tree.
    children: Vec<Vec<BlockId>>,
    /// Blocks in reverse postorder.
    rpo: Vec<BlockId>,
    /// Preorder (DFS entry) number per block in the dominator tree.
    pre: Vec<u32>,
    /// DFS exit number per block.
    post: Vec<u32>,
    /// Whether the block is reachable.
    reachable: Vec<bool>,
}

impl DomTree {
    /// Computes the dominator tree of `f`.
    pub fn compute(f: &Function) -> DomTree {
        DOM_COMPUTES.fetch_add(1, Ordering::Relaxed);
        let n = f.blocks.len();
        let rpo = reverse_postorder(f);
        let mut rpo_num = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_num[b.index()] = i;
        }
        let preds = f.predecessors();
        let entry = f.entry();

        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[entry.index()] = Some(entry); // temporary self-idom for the fixpoint

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue; // not yet processed or unreachable
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_num, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        idom[entry.index()] = None;

        let mut children = vec![Vec::new(); n];
        for b in f.block_ids() {
            if let Some(d) = idom[b.index()] {
                children[d.index()].push(b);
            }
        }

        // preorder/postorder numbering for O(1) dominance queries
        let mut pre = vec![0u32; n];
        let mut post = vec![0u32; n];
        let mut clock = 0u32;
        let mut stack: Vec<(BlockId, usize)> = vec![(entry, 0)];
        pre[entry.index()] = {
            clock += 1;
            clock
        };
        while let Some(&mut (b, ref mut cursor)) = stack.last_mut() {
            if *cursor < children[b.index()].len() {
                let c = children[b.index()][*cursor];
                *cursor += 1;
                clock += 1;
                pre[c.index()] = clock;
                stack.push((c, 0));
            } else {
                clock += 1;
                post[b.index()] = clock;
                stack.pop();
            }
        }

        let mut reachable = vec![false; n];
        for &b in &rpo {
            reachable[b.index()] = true;
        }

        DomTree {
            idom,
            children,
            rpo,
            pre,
            post,
            reachable,
        }
    }

    /// The immediate dominator of `b` (`None` for the entry).
    #[inline]
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()]
    }

    /// Dominator-tree children of `b`.
    #[inline]
    pub fn children(&self, b: BlockId) -> &[BlockId] {
        &self.children[b.index()]
    }

    /// Whether `a` dominates `b` (reflexive).
    #[inline]
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        self.reachable[a.index()]
            && self.reachable[b.index()]
            && self.pre[a.index()] <= self.pre[b.index()]
            && self.post[a.index()] >= self.post[b.index()]
    }

    /// Whether `a` strictly dominates `b`.
    #[inline]
    pub fn strictly_dominates(&self, a: BlockId, b: BlockId) -> bool {
        a != b && self.dominates(a, b)
    }

    /// Blocks in reverse postorder (reachable only).
    #[inline]
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Whether `b` is reachable from the entry.
    #[inline]
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.reachable[b.index()]
    }

    /// Dominator-tree preorder starting at the entry (the traversal order of
    /// SSA/SSAPRE renaming).
    pub fn preorder(&self) -> Vec<BlockId> {
        let entry = self.rpo[0];
        let mut out = Vec::with_capacity(self.rpo.len());
        let mut stack = vec![entry];
        while let Some(b) = stack.pop() {
            out.push(b);
            // push children in reverse so the first child is visited first
            for &c in self.children[b.index()].iter().rev() {
                stack.push(c);
            }
        }
        out
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_num: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_num[a.index()] > rpo_num[b.index()] {
            a = idom[a.index()].expect("processed block has idom");
        }
        while rpo_num[b.index()] > rpo_num[a.index()] {
            b = idom[b.index()].expect("processed block has idom");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use specframe_ir::{ModuleBuilder, Ty};

    /// Classic CFG from the Cooper–Harvey–Kennedy paper (Figure 2):
    /// 5 -> {4, 3}; 4 -> 1; 3 -> 2; 1 -> 2; 2 -> {1, exit-ish}
    /// We adapt: entry=b0 plays node 5.
    fn chk_example() -> specframe_ir::Module {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_func("chk", &[("x", Ty::I64)], None);
        {
            let mut fb = mb.define(f);
            let x = fb.param(0);
            let b4 = fb.block("n4");
            let b3 = fb.block("n3");
            let b1 = fb.block("n1");
            let b2 = fb.block("n2");
            fb.br(x.into(), b4, b3);
            fb.switch_to(b4);
            fb.jmp(b1);
            fb.switch_to(b3);
            fb.jmp(b2);
            fb.switch_to(b1);
            fb.jmp(b2);
            fb.switch_to(b2);
            fb.br(x.into(), b1, b1);
            // make b2 exit through b1? keep simple: b2 br to b1 both ways
        }
        mb.finish()
    }

    #[test]
    fn chk_idoms() {
        let m = chk_example();
        let d = DomTree::compute(&m.funcs[0]);
        // entry (n5) immediately dominates everything else
        for b in 1..5u32 {
            assert_eq!(d.idom(BlockId(b)), Some(BlockId(0)), "idom of b{b}");
        }
        assert_eq!(d.idom(BlockId(0)), None);
    }

    #[test]
    fn linear_chain_idoms() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_func("lin", &[], None);
        {
            let mut fb = mb.define(f);
            let b1 = fb.block("b1");
            let b2 = fb.block("b2");
            fb.jmp(b1);
            fb.switch_to(b1);
            fb.jmp(b2);
            fb.switch_to(b2);
            fb.ret(None);
        }
        let m = mb.finish();
        let d = DomTree::compute(&m.funcs[0]);
        assert_eq!(d.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(d.idom(BlockId(2)), Some(BlockId(1)));
        assert!(d.dominates(BlockId(0), BlockId(2)));
        assert!(d.strictly_dominates(BlockId(0), BlockId(2)));
        assert!(!d.dominates(BlockId(2), BlockId(1)));
        assert!(d.dominates(BlockId(1), BlockId(1)));
    }

    #[test]
    fn diamond_merge_dominated_by_fork() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_func("d", &[("x", Ty::I64)], None);
        {
            let mut fb = mb.define(f);
            let x = fb.param(0);
            let a = fb.block("a");
            let b = fb.block("b");
            let c = fb.block("c");
            fb.br(x.into(), a, b);
            fb.switch_to(a);
            fb.jmp(c);
            fb.switch_to(b);
            fb.jmp(c);
            fb.switch_to(c);
            fb.ret(None);
        }
        let m = mb.finish();
        let d = DomTree::compute(&m.funcs[0]);
        assert_eq!(d.idom(BlockId(3)), Some(BlockId(0)));
        assert!(!d.dominates(BlockId(1), BlockId(3)));
        assert!(!d.dominates(BlockId(2), BlockId(3)));
    }

    #[test]
    fn preorder_visits_parents_first() {
        let m = chk_example();
        let d = DomTree::compute(&m.funcs[0]);
        let pre = d.preorder();
        let pos = |b: BlockId| pre.iter().position(|&x| x == b).unwrap_or(usize::MAX);
        for b in m.funcs[0].block_ids() {
            if let Some(p) = d.idom(b) {
                assert!(pos(p) < pos(b), "parent {p} before child {b}");
            }
        }
    }

    #[test]
    fn loop_idoms() {
        // entry -> head; head -> {body, exit}; body -> head
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_func("l", &[("x", Ty::I64)], None);
        {
            let mut fb = mb.define(f);
            let x = fb.param(0);
            let head = fb.block("head");
            let body = fb.block("body");
            let exit = fb.block("exit");
            fb.jmp(head);
            fb.switch_to(head);
            fb.br(x.into(), body, exit);
            fb.switch_to(body);
            fb.jmp(head);
            fb.switch_to(exit);
            fb.ret(None);
        }
        let m = mb.finish();
        let d = DomTree::compute(&m.funcs[0]);
        assert_eq!(d.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(d.idom(BlockId(2)), Some(BlockId(1)));
        assert_eq!(d.idom(BlockId(3)), Some(BlockId(1)));
    }
}
