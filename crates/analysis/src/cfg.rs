//! CFG traversal orders and edge utilities.

use specframe_ir::{Block, BlockId, Function, Terminator};

/// Blocks reachable from the entry, as a membership vector indexed by block.
pub fn reachable_blocks(f: &Function) -> Vec<bool> {
    let mut seen = vec![false; f.blocks.len()];
    let mut stack = vec![f.entry()];
    seen[f.entry().index()] = true;
    while let Some(b) = stack.pop() {
        for s in f.block(b).term.successors() {
            if !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
    }
    seen
}

/// Reverse postorder over reachable blocks, starting at the entry.
///
/// This is the iteration order for forward dataflow and the block order the
/// dominator computation requires.
pub fn reverse_postorder(f: &Function) -> Vec<BlockId> {
    let mut post = Vec::with_capacity(f.blocks.len());
    let mut state = vec![0u8; f.blocks.len()]; // 0 unvisited, 1 open, 2 done
                                               // iterative DFS with explicit successor cursor
    let mut stack: Vec<(BlockId, usize)> = vec![(f.entry(), 0)];
    state[f.entry().index()] = 1;
    while let Some(&mut (b, ref mut cursor)) = stack.last_mut() {
        let succs = f.block(b).term.successors();
        if *cursor < succs.len() {
            let s = succs[*cursor];
            *cursor += 1;
            if state[s.index()] == 0 {
                state[s.index()] = 1;
                stack.push((s, 0));
            }
        } else {
            state[b.index()] = 2;
            post.push(b);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// Splits every critical edge (edge from a block with multiple successors to
/// a block with multiple predecessors) by inserting an empty forwarding
/// block. Returns the number of edges split.
///
/// SSAPRE inserts computations *on edges* (at Φ operands); splitting makes
/// every insertion point a block of its own, and out-of-SSA φ lowering needs
/// it for the same reason.
pub fn split_critical_edges(f: &mut Function) -> usize {
    let preds = f.predecessors();
    let mut to_split: Vec<(BlockId, BlockId)> = Vec::new();
    for b in f.block_ids() {
        let succs = f.block(b).term.successors();
        if succs.len() <= 1 {
            continue;
        }
        for s in succs {
            if preds[s.index()].len() > 1 {
                to_split.push((b, s));
            }
        }
    }
    for &(from, to) in &to_split {
        let mid = BlockId::from_index(f.blocks.len());
        f.blocks.push(Block {
            name: format!(
                "crit_{}_{}",
                f.blocks[from.index()].name,
                f.blocks[to.index()].name
            ),
            insts: Vec::new(),
            term: Terminator::Jump(to),
        });
        f.block_mut(from).term.map_successors(|t| {
            if *t == to {
                *t = mid;
            }
        });
    }
    to_split.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use specframe_ir::{ModuleBuilder, Operand, Ty};

    /// entry -> (a | b); a -> c; b -> c; c -> ret
    fn diamond() -> specframe_ir::Module {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_func("d", &[("x", Ty::I64)], None);
        {
            let mut fb = mb.define(f);
            let x = fb.param(0);
            let a = fb.block("a");
            let b = fb.block("b");
            let c = fb.block("c");
            fb.br(x.into(), a, b);
            fb.switch_to(a);
            fb.jmp(c);
            fb.switch_to(b);
            fb.jmp(c);
            fb.switch_to(c);
            fb.ret(None);
        }
        mb.finish()
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let m = diamond();
        let rpo = reverse_postorder(&m.funcs[0]);
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[0], m.funcs[0].entry());
        // c must come after both a and b
        let pos = |b: BlockId| rpo.iter().position(|&x| x == b).unwrap();
        assert!(pos(BlockId(3)) > pos(BlockId(1)));
        assert!(pos(BlockId(3)) > pos(BlockId(2)));
    }

    #[test]
    fn unreachable_blocks_excluded() {
        let mut m = diamond();
        let dead = m.funcs[0].new_block("dead");
        m.funcs[0].block_mut(dead).term = Terminator::Ret(None);
        let rpo = reverse_postorder(&m.funcs[0]);
        assert_eq!(rpo.len(), 4);
        let reach = reachable_blocks(&m.funcs[0]);
        assert!(!reach[dead.index()]);
    }

    #[test]
    fn critical_edge_split() {
        // entry -br-> (merge | side); side -> merge: edge entry->merge is critical
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_func("t", &[("x", Ty::I64)], None);
        {
            let mut fb = mb.define(f);
            let x = fb.param(0);
            let merge = fb.block("merge");
            let side = fb.block("side");
            fb.br(x.into(), merge, side);
            fb.switch_to(side);
            fb.jmp(merge);
            fb.switch_to(merge);
            fb.ret(None);
        }
        let mut m = mb.finish();
        let n = split_critical_edges(&mut m.funcs[0]);
        assert_eq!(n, 1);
        // the branch no longer targets merge directly
        let Terminator::Br { then_, .. } = m.funcs[0].blocks[0].term.clone() else {
            panic!()
        };
        assert_ne!(then_, BlockId(1));
        assert!(matches!(
            m.funcs[0].block(then_).term,
            Terminator::Jump(b) if b == BlockId(1)
        ));
        // splitting again is a no-op
        assert_eq!(split_critical_edges(&mut m.funcs[0]), 0);
        specframe_ir::verify_module(&m).unwrap();
    }

    #[test]
    fn branch_with_const_cond_still_splits() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_func("t", &[], None);
        {
            let mut fb = mb.define(f);
            let a = fb.block("a");
            let b = fb.block("b");
            fb.br(Operand::ConstI(1), a, b);
            fb.switch_to(a);
            fb.jmp(b);
            fb.switch_to(b);
            fb.ret(None);
        }
        let mut m = mb.finish();
        assert_eq!(split_critical_edges(&mut m.funcs[0]), 1);
    }
}
