//! # specframe-analysis
//!
//! Control-flow analyses shared by every pass in the `specframe` framework:
//!
//! * [`mod@cfg`] — traversal orders, reachability, critical-edge splitting;
//! * [`dom`] — dominator tree (Cooper–Harvey–Kennedy);
//! * [`df`] — dominance frontiers and iterated dominance frontiers (the φ /
//!   Φ placement machinery of SSA and SSAPRE);
//! * [`loops`] — natural-loop detection and nesting depth;
//! * [`freq`] — edge profiles and static branch-prediction heuristics
//!   (Ball–Larus style), the *control speculation* information source of the
//!   paper's Figure 3.

pub mod cache;
pub mod cfg;
pub mod df;
pub mod dom;
pub mod freq;
pub mod loops;

pub use cache::FuncAnalyses;
pub use cfg::{reachable_blocks, reverse_postorder, split_critical_edges};
pub use df::{iterated_df, DomFrontiers};
pub use dom::{dom_compute_count, DomTree};
pub use freq::{estimate_function_with, estimate_profile, estimate_profile_with, EdgeProfile};
pub use loops::LoopInfo;
