//! Natural-loop detection and nesting depth.
//!
//! Loop structure feeds two consumers: the static branch heuristics in
//! [`crate::freq`] (back edges are predicted taken) and the speculative
//! register promoter, which reports how much loop-invariant memory traffic
//! it hoisted.

use crate::dom::DomTree;
use specframe_ir::{BlockId, Function};

/// One natural loop.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// The loop header (target of the back edge).
    pub header: BlockId,
    /// Back-edge sources (latches).
    pub latches: Vec<BlockId>,
    /// All blocks in the loop body, header included, sorted.
    pub body: Vec<BlockId>,
}

/// Loop forest of one function.
#[derive(Debug, Clone)]
pub struct LoopInfo {
    /// Detected loops, outermost-first by header RPO position.
    pub loops: Vec<NaturalLoop>,
    /// Loop-nesting depth per block (0 = not in any loop).
    pub depth: Vec<u32>,
}

impl LoopInfo {
    /// Finds all natural loops: edges `l -> h` where `h` dominates `l`.
    /// Loops sharing a header are merged (as in standard loop analysis).
    pub fn compute(f: &Function, dt: &DomTree) -> LoopInfo {
        let n = f.blocks.len();
        let preds = f.predecessors();
        // gather back edges per header
        let mut latches_of: std::collections::BTreeMap<BlockId, Vec<BlockId>> = Default::default();
        for b in f.block_ids() {
            if !dt.is_reachable(b) {
                continue;
            }
            for s in f.block(b).term.successors() {
                if dt.dominates(s, b) {
                    latches_of.entry(s).or_default().push(b);
                }
            }
        }
        let mut loops = Vec::new();
        let mut depth = vec![0u32; n];
        for (&header, latches) in &latches_of {
            // body = header + all blocks that reach a latch without passing
            // through the header (standard natural-loop walk)
            let mut body = vec![header];
            let mut seen = vec![false; n];
            seen[header.index()] = true;
            let mut stack: Vec<BlockId> = latches.clone();
            for &l in latches {
                seen[l.index()] = true;
            }
            while let Some(b) = stack.pop() {
                if !body.contains(&b) {
                    body.push(b);
                }
                for &p in &preds[b.index()] {
                    if !seen[p.index()] && dt.is_reachable(p) {
                        seen[p.index()] = true;
                        stack.push(p);
                    }
                }
            }
            body.sort();
            body.dedup();
            for &b in &body {
                depth[b.index()] += 1;
            }
            loops.push(NaturalLoop {
                header,
                latches: latches.clone(),
                body,
            });
        }
        // order outermost-first: fewer enclosing loops = smaller depth at header
        loops.sort_by_key(|l| depth[l.header.index()]);
        LoopInfo { loops, depth }
    }

    /// Loop-nesting depth of a block (0 outside any loop).
    #[inline]
    pub fn depth(&self, b: BlockId) -> u32 {
        self.depth[b.index()]
    }

    /// Whether edge `from -> to` is a back edge of some detected loop.
    pub fn is_back_edge(&self, from: BlockId, to: BlockId) -> bool {
        self.loops
            .iter()
            .any(|l| l.header == to && l.latches.contains(&from))
    }

    /// The innermost loop containing `b`, if any (the loop with the largest
    /// header depth whose body contains `b`).
    pub fn innermost_containing(&self, b: BlockId) -> Option<&NaturalLoop> {
        self.loops
            .iter()
            .filter(|l| l.body.binary_search(&b).is_ok())
            .max_by_key(|l| self.depth[l.header.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specframe_ir::{ModuleBuilder, Ty};

    fn nested_loops() -> specframe_ir::Module {
        // entry -> oh; oh -> {ih, exit}; ih -> {ib, ol}; ib -> ih; ol -> oh
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_func("n", &[("x", Ty::I64)], None);
        {
            let mut fb = mb.define(f);
            let x = fb.param(0);
            let oh = fb.block("outer_head");
            let ih = fb.block("inner_head");
            let ib = fb.block("inner_body");
            let ol = fb.block("outer_latch");
            let exit = fb.block("exit");
            fb.jmp(oh);
            fb.switch_to(oh);
            fb.br(x.into(), ih, exit);
            fb.switch_to(ih);
            fb.br(x.into(), ib, ol);
            fb.switch_to(ib);
            fb.jmp(ih);
            fb.switch_to(ol);
            fb.jmp(oh);
            fb.switch_to(exit);
            fb.ret(None);
        }
        mb.finish()
    }

    #[test]
    fn finds_nested_loops_and_depths() {
        let m = nested_loops();
        let f = &m.funcs[0];
        let dt = DomTree::compute(f);
        let li = LoopInfo::compute(f, &dt);
        assert_eq!(li.loops.len(), 2);
        // outer: header=1 (oh), body {1,2,3,4}; inner: header=2, body {2,3}
        let outer = li.loops.iter().find(|l| l.header == BlockId(1)).unwrap();
        let inner = li.loops.iter().find(|l| l.header == BlockId(2)).unwrap();
        assert_eq!(
            outer.body,
            vec![BlockId(1), BlockId(2), BlockId(3), BlockId(4)]
        );
        assert_eq!(inner.body, vec![BlockId(2), BlockId(3)]);
        assert_eq!(li.depth(BlockId(0)), 0);
        assert_eq!(li.depth(BlockId(1)), 1);
        assert_eq!(li.depth(BlockId(2)), 2);
        assert_eq!(li.depth(BlockId(3)), 2);
        assert_eq!(li.depth(BlockId(4)), 1);
        assert_eq!(li.depth(BlockId(5)), 0);
    }

    #[test]
    fn back_edges_identified() {
        let m = nested_loops();
        let f = &m.funcs[0];
        let dt = DomTree::compute(f);
        let li = LoopInfo::compute(f, &dt);
        assert!(li.is_back_edge(BlockId(3), BlockId(2)));
        assert!(li.is_back_edge(BlockId(4), BlockId(1)));
        assert!(!li.is_back_edge(BlockId(1), BlockId(2)));
    }

    #[test]
    fn innermost_lookup() {
        let m = nested_loops();
        let f = &m.funcs[0];
        let dt = DomTree::compute(f);
        let li = LoopInfo::compute(f, &dt);
        assert_eq!(
            li.innermost_containing(BlockId(3)).unwrap().header,
            BlockId(2)
        );
        assert_eq!(
            li.innermost_containing(BlockId(4)).unwrap().header,
            BlockId(1)
        );
        assert!(li.innermost_containing(BlockId(5)).is_none());
    }

    #[test]
    fn acyclic_function_has_no_loops() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_func("a", &[], None);
        {
            let mut fb = mb.define(f);
            let b = fb.block("b");
            fb.jmp(b);
            fb.switch_to(b);
            fb.ret(None);
        }
        let m = mb.finish();
        let f = &m.funcs[0];
        let dt = DomTree::compute(f);
        let li = LoopInfo::compute(f, &dt);
        assert!(li.loops.is_empty());
        assert!(li.depth.iter().all(|&d| d == 0));
    }
}
