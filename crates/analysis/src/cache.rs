//! Per-function analysis cache.
//!
//! Every per-function pass in the pipeline (HSSA construction, SSAPRE,
//! strength reduction, store sinking) consumes the same three derived
//! structures: the dominator tree, its dominance frontiers, and the natural
//! loop nest. Historically each pass recomputed them from scratch — up to
//! four dominator builds per function per `optimize` call. [`FuncAnalyses`]
//! computes them once and is threaded by reference through the pipeline.
//!
//! ## Invalidation rule
//!
//! A cached [`FuncAnalyses`] is valid for as long as the function's **CFG
//! shape** (block set, terminators / edges) is unchanged. Passes that only
//! rewrite instructions, operands, or φ operands — everything between
//! `refine_function` and `lower_hssa` in the current pipeline — must NOT
//! invalidate it. Any pass that adds/removes blocks or edges (e.g.
//! `split_critical_edges`, which therefore runs *before* analyses are
//! built) must call [`FuncAnalyses::recompute`] before the cache is used
//! again.

use crate::df::DomFrontiers;
use crate::dom::DomTree;
use crate::loops::LoopInfo;
use specframe_ir::Function;

/// The CFG-derived analyses of one function, computed once per `optimize`
/// call and shared (by reference) across all per-function passes.
#[derive(Debug, Clone)]
pub struct FuncAnalyses {
    /// Dominator tree (Cooper–Harvey–Kennedy).
    pub dt: DomTree,
    /// Dominance frontiers of `dt` — the φ/Φ placement sets.
    pub df: DomFrontiers,
    /// Natural-loop nest and per-block nesting depth.
    pub loops: LoopInfo,
}

impl FuncAnalyses {
    /// Computes all analyses of `f` from scratch.
    pub fn compute(f: &Function) -> FuncAnalyses {
        let dt = DomTree::compute(f);
        let df = DomFrontiers::compute(f, &dt);
        let loops = LoopInfo::compute(f, &dt);
        FuncAnalyses { dt, df, loops }
    }

    /// Rebuilds the analyses after a CFG edit (see the invalidation rule in
    /// the module docs).
    pub fn recompute(&mut self, f: &Function) {
        *self = FuncAnalyses::compute(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::dom_compute_count;
    use specframe_ir::{ModuleBuilder, Ty};

    fn diamond() -> specframe_ir::Module {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_func("d", &[("x", Ty::I64)], None);
        {
            let mut fb = mb.define(f);
            let x = fb.param(0);
            let a = fb.block("a");
            let b = fb.block("b");
            let c = fb.block("c");
            fb.br(x.into(), a, b);
            fb.switch_to(a);
            fb.jmp(c);
            fb.switch_to(b);
            fb.jmp(c);
            fb.switch_to(c);
            fb.ret(None);
        }
        mb.finish()
    }

    #[test]
    fn compute_builds_one_dom_tree() {
        let m = diamond();
        let before = dom_compute_count();
        let fa = FuncAnalyses::compute(&m.funcs[0]);
        assert_eq!(dom_compute_count() - before, 1);
        assert!(fa.dt.is_reachable(specframe_ir::BlockId(3)));
        // merge block of the diamond is in the frontier of both arms
        assert!(!fa.df.of(specframe_ir::BlockId(1)).is_empty());
        assert_eq!(fa.loops.depth(specframe_ir::BlockId(0)), 0);
    }

    #[test]
    fn recompute_matches_fresh() {
        let m = diamond();
        let mut fa = FuncAnalyses::compute(&m.funcs[0]);
        fa.recompute(&m.funcs[0]);
        let fresh = FuncAnalyses::compute(&m.funcs[0]);
        assert_eq!(
            fa.dt.idom(specframe_ir::BlockId(3)),
            fresh.dt.idom(specframe_ir::BlockId(3))
        );
    }
}
