//! Dominance frontiers and iterated dominance frontiers.
//!
//! `DF(b)` is the set of blocks where `b`'s dominance stops: the join points
//! that need a φ when `b` contains a definition. `DF⁺` (the iterated
//! frontier) is the transitive closure used both by SSA construction and by
//! SSAPRE's Φ-Insertion step (§4.2 of the paper: "Φs are inserted at the
//! Iterated Dominance Frontiers (DF+) of each occurrence of an expression").

use crate::dom::DomTree;
use specframe_ir::{BlockId, Function};

/// Dominance frontiers for every block of one function.
///
/// Only *join blocks* (two or more predecessors) appear in frontiers:
/// a single-predecessor block never needs a φ, so omitting it is sound for
/// every φ/Φ-placement use in this workspace (and is what the classic
/// "only merge nodes" optimization of Cytron et al. does).
#[derive(Debug, Clone)]
pub struct DomFrontiers {
    df: Vec<Vec<BlockId>>,
}

impl DomFrontiers {
    /// Computes dominance frontiers with the Cytron et al. / CHK algorithm:
    /// for each join block `j` and each predecessor `p`, walk `p`'s idom
    /// chain up to (but excluding) `idom(j)`, adding `j` to each frontier.
    pub fn compute(f: &Function, dt: &DomTree) -> DomFrontiers {
        let n = f.blocks.len();
        let mut df: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        let preds = f.predecessors();
        for b in f.block_ids() {
            if !dt.is_reachable(b) || preds[b.index()].len() < 2 {
                continue;
            }
            let idom_b = dt.idom(b);
            for &p in &preds[b.index()] {
                if !dt.is_reachable(p) {
                    continue;
                }
                let mut runner = Some(p);
                while let Some(r) = runner {
                    if Some(r) == idom_b {
                        break;
                    }
                    if !df[r.index()].contains(&b) {
                        df[r.index()].push(b);
                    }
                    runner = dt.idom(r);
                }
            }
        }
        DomFrontiers { df }
    }

    /// The dominance frontier of one block.
    #[inline]
    pub fn of(&self, b: BlockId) -> &[BlockId] {
        &self.df[b.index()]
    }
}

/// The iterated dominance frontier of a set of seed blocks.
///
/// Returns the fixpoint `DF⁺(seeds)` as a sorted, deduplicated vector.
pub fn iterated_df(df: &DomFrontiers, seeds: impl IntoIterator<Item = BlockId>) -> Vec<BlockId> {
    let mut in_set: Vec<BlockId> = Vec::new();
    let mut work: Vec<BlockId> = seeds.into_iter().collect();
    let mut member = std::collections::HashSet::new();
    while let Some(b) = work.pop() {
        for &d in df.of(b) {
            if member.insert(d) {
                in_set.push(d);
                work.push(d);
            }
        }
    }
    in_set.sort();
    in_set
}

#[cfg(test)]
mod tests {
    use super::*;
    use specframe_ir::{ModuleBuilder, Ty};

    /// entry -> {a, b}; a -> m; b -> m; m -> ret — DF(a) = DF(b) = {m}.
    #[test]
    fn diamond_frontier() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_func("d", &[("x", Ty::I64)], None);
        {
            let mut fb = mb.define(f);
            let x = fb.param(0);
            let a = fb.block("a");
            let b = fb.block("b");
            let m = fb.block("m");
            fb.br(x.into(), a, b);
            fb.switch_to(a);
            fb.jmp(m);
            fb.switch_to(b);
            fb.jmp(m);
            fb.switch_to(m);
            fb.ret(None);
        }
        let m = mb.finish();
        let dt = DomTree::compute(&m.funcs[0]);
        let df = DomFrontiers::compute(&m.funcs[0], &dt);
        assert_eq!(df.of(BlockId(1)), &[BlockId(3)]);
        assert_eq!(df.of(BlockId(2)), &[BlockId(3)]);
        assert_eq!(df.of(BlockId(0)), &[] as &[BlockId]);
        assert_eq!(df.of(BlockId(3)), &[] as &[BlockId]);
    }

    /// Loop: entry -> head; head -> {body, exit}; body -> head.
    /// DF(body) = {head}; DF(head) = {head} (head is its own frontier via
    /// the back edge).
    #[test]
    fn loop_frontier_contains_header() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_func("l", &[("x", Ty::I64)], None);
        {
            let mut fb = mb.define(f);
            let x = fb.param(0);
            let head = fb.block("head");
            let body = fb.block("body");
            let exit = fb.block("exit");
            fb.jmp(head);
            fb.switch_to(head);
            fb.br(x.into(), body, exit);
            fb.switch_to(body);
            fb.jmp(head);
            fb.switch_to(exit);
            fb.ret(None);
        }
        let m = mb.finish();
        let dt = DomTree::compute(&m.funcs[0]);
        let df = DomFrontiers::compute(&m.funcs[0], &dt);
        assert_eq!(df.of(BlockId(2)), &[BlockId(1)]);
        assert_eq!(df.of(BlockId(1)), &[BlockId(1)]);
        // a def in `body` needs phis at head only
        let idf = iterated_df(&df, [BlockId(2)]);
        assert_eq!(idf, vec![BlockId(1)]);
    }

    /// Nested joins require iteration: def in `a` reaches join `m1`, whose
    /// frontier adds `m2`.
    #[test]
    fn iterated_frontier_closes() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_func("n", &[("x", Ty::I64)], None);
        {
            let mut fb = mb.define(f);
            let x = fb.param(0);
            let a = fb.block("a");
            let b = fb.block("b");
            let m1 = fb.block("m1");
            let c = fb.block("c");
            let m2 = fb.block("m2");
            fb.br(x.into(), a, c);
            fb.switch_to(a);
            fb.br(x.into(), b, m1);
            fb.switch_to(b);
            fb.jmp(m1);
            fb.switch_to(m1);
            fb.jmp(m2);
            fb.switch_to(c);
            fb.jmp(m2);
            fb.switch_to(m2);
            fb.ret(None);
        }
        let m = mb.finish();
        let dt = DomTree::compute(&m.funcs[0]);
        let df = DomFrontiers::compute(&m.funcs[0], &dt);
        let idf = iterated_df(&df, [BlockId(2)]); // def in b
        assert_eq!(idf, vec![BlockId(3), BlockId(5)]); // m1 then m2
    }
}
