//! # specframe
//!
//! A Rust reproduction of *"A Compiler Framework for Speculative Analysis
//! and Optimizations"* (Lin, Chen, Hsu, Yew, Ju, Ngai, Chan — PLDI 2003):
//! a compiler framework in which **data speculation** — not just control
//! speculation — drives general dataflow optimizations, checked at run
//! time by IA-64-style hardware (`ld.a` / `ld.c` / the ALAT).
//!
//! This crate is the facade over the workspace:
//!
//! | crate | role |
//! |-------|------|
//! | [`ir`] | the mid-level IR (the paper's WHIRL stand-in) |
//! | [`analysis`] | CFG, dominators, loops, edge profiles & branch heuristics |
//! | [`alias`] | LOCs, Steensgaard equivalence classes, TBAA, mod/ref |
//! | [`profile`] | interpreter, alias/edge profilers, load-reuse simulation |
//! | [`hssa`] | the **speculative SSA form** (χs/μs, §3) |
//! | [`core`] | **speculative SSAPRE** (§4): PRE, register promotion, SR, LFTR |
//! | [`codegen`] | lowering to the EPIC target |
//! | [`machine`] | ALAT model + cycle-approximate simulator (`pfmon` counters) |
//! | [`workloads`] | the eight SPEC2000-personality kernels |
//!
//! ## Quickstart
//!
//! ```
//! use specframe::prelude::*;
//!
//! let src = r#"
//! global a: i64[1] = [7]
//! global b: i64[1]
//!
//! func kern(p: ptr, n: i64) -> i64 {
//!   var i: i64
//!   var c: i64
//!   var v: i64
//!   var acc: i64
//! entry:
//!   i = 0
//!   acc = 0
//!   jmp head
//! head:
//!   c = lt i, n
//!   br c, body, exit
//! body:
//!   v = load.i64 [@a]
//!   acc = add acc, v
//!   store.i64 [p], acc
//!   i = add i, 1
//!   jmp head
//! exit:
//!   ret acc
//! }
//!
//! func main(sel: i64, n: i64) -> i64 {
//!   var r: i64
//!   var p: ptr
//! entry:
//!   br sel, ua, ub
//! ua:
//!   p = @a
//!   jmp go
//! ub:
//!   p = @b
//!   jmp go
//! go:
//!   r = call kern(p, n)
//!   ret r
//! }
//! "#;
//!
//! // parse, prepare, profile on the training input
//! let mut m = parse_module(src).unwrap();
//! prepare_module(&mut m);
//! let mut profiler = AliasProfiler::new();
//! let args = [Value::I(0), Value::I(100)];
//! run_with(&m, "main", &args, 1_000_000, &mut profiler).unwrap();
//! let aprof = profiler.finish();
//!
//! // optimize with data + control speculation
//! let stats = optimize(&mut m, &OptOptions {
//!     data: SpecSource::Profile(&aprof),
//!     control: ControlSpec::Static,
//!     strength_reduction: true,
//!     lftr: true,
//!     store_sinking: true,
//!     target: TargetId::Epic,
//! });
//! assert!(stats.checks > 0);
//!
//! // run on the EPIC machine and read the pfmon-style counters
//! let prog = lower_module(&m);
//! let (result, counters) = run_machine(&prog, "main", &args, 1_000_000).unwrap();
//! assert_eq!(result, Some(Value::I(700)));
//! assert!(counters.check_loads > 0);
//! assert_eq!(counters.failed_checks, 0); // the profile held
//! ```

pub use specframe_alias as alias;
pub use specframe_analysis as analysis;
pub use specframe_codegen as codegen;
pub use specframe_core as core;
pub use specframe_hssa as hssa;
pub use specframe_ir as ir;
pub use specframe_machine as machine;
pub use specframe_profile as profile;
pub use specframe_workloads as workloads;

pub mod pipeline;
pub mod serve;

/// The most common imports in one place.
pub mod prelude {
    pub use crate::pipeline::{
        compile, compile_module, reduce_failure, simulate_text, CompileFailure, CompileOutput,
        CompileRequest,
    };
    pub use crate::serve::{serve_queue, serve_stdin, ServeConfig};
    pub use specframe_alias::{AliasAnalysis, Loc};
    pub use specframe_codegen::{lower_module, lower_module_for};
    pub use specframe_core::{
        optimize, optimize_with, optimize_with_hooks, prepare_module, reduce_module, render_dumps,
        try_optimize_with_hooks, ControlSpec, OptOptions, OptReport, OptStats, Pass, PassDump,
        PassSet, PassTimings, PipelineConfig, PipelineHooks, ReduceStats, SpecSource,
    };
    pub use specframe_hssa::{build_hssa, print_hssa, SpecMode};
    pub use specframe_ir::{parse_module, verify_module, Module, ModuleBuilder, Ty, Value};
    pub use specframe_machine::{audit_func, audit_program, AuditError, AuditStats};
    pub use specframe_machine::{
        fault_matrix, parse_fault_policy, run_machine, run_machine_on, run_machine_with_policy,
        run_machine_with_policy_on, Counters, SpecTarget, TargetId,
    };
    pub use specframe_profile::{run, run_with, AliasProfiler, EdgeProfiler, ReuseSimulator};
    pub use specframe_workloads::{
        all_workloads, inst_count, mega_module, mega_source, workload_by_name, Scale, Workload,
    };
}
