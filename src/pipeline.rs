//! One-call compile sessions over the speculative pipeline.
//!
//! `specc` and the `spectest` golden-test runner both need the same
//! sequence — parse, verify, prepare, (optionally) profile on a training
//! input, then run [`specframe_core::try_optimize_with_hooks`] — with the
//! same flag vocabulary. This module is that shared seam, so a
//! `; RUN: specc …` line in a golden test exercises exactly the code path
//! the CLI does, without spawning a subprocess.
//!
//! Failures are classified by [`CompileFailure`] so the CLI can exit with
//! a distinct code per family (usage 1, parse 2, compile 3, exhausted
//! speculation recovery 4, deadline exceeded 5), and the simulator
//! rendering shared by `specc --sim` and golden tests lives in
//! [`simulate_text`].

use specframe_alias::AliasAnalysis;
use specframe_codegen::{lower_module_fenced_for, lower_module_for};
use specframe_core::{
    cache::DEFAULT_RETRY_BUDGET, cancel::Watchdog, parse_store_fault_policy, prepare_module,
    target_spec_costs, try_optimize_cached, CacheHealth, CancelToken, CompileDiag, CompileError,
    ControlSpec, FuncCache, OptOptions, OptReport, PassDump, PipelineConfig, PipelineHooks,
    SpecSource,
};
use specframe_hssa::{build_hssa, HOperand, HStmtKind, Likeliness, SiteQuery, SpecMode};
use specframe_ir::{parse_module, verify_module, FuncId, Module, Ty, Value};
use specframe_machine::{
    leak_audit_program, parse_fault_policy, run_machine_taint_on, run_machine_with_policy_on,
    witness_leaks_on, Counters, LeakEvent, TargetId,
};
use specframe_profile::{parse_alias_profile, run_with, AliasProfile, AliasProfiler, EdgeProfiler};

/// Everything a compile session needs besides the program text. The
/// string-typed fields (`spec`, `control`) use the `specc` CLI vocabulary
/// so RUN lines and the driver parse identically.
#[derive(Debug, Clone)]
pub struct CompileRequest {
    /// Entry function for profiling runs (`--entry`).
    pub entry: String,
    /// Reference arguments (`--args`); also the training arguments unless
    /// [`CompileRequest::train_args`] overrides them.
    pub args: Vec<Value>,
    /// Training-run arguments (`--train-args`); `None` means use `args`.
    pub train_args: Option<Vec<Value>>,
    /// Data speculation source: `none|profile|heuristic|aggressive`.
    pub spec: String,
    /// Control speculation source: `off|profile|static`.
    pub control: String,
    /// Run strength reduction (off with `--no-sr`, which also disables
    /// LFTR — it consumes strength reduction's temporaries).
    pub strength_reduction: bool,
    /// Run linear-function test replacement (off with `--no-lftr`).
    pub lftr: bool,
    /// Run store promotion (`--store-sinking`).
    pub store_sinking: bool,
    /// Worker threads (`--jobs`, 0 = auto).
    pub jobs: usize,
    /// Snapshot/stop requests (`--dump-after` / `--stop-after`) and fault
    /// injection (`--inject-spec-fail` / `--inject-fallback-fail`).
    pub hooks: PipelineHooks,
    /// Interpreter fuel for profiling runs.
    pub fuel: u64,
    /// Serialized alias profile (`--alias-profile` file contents). Used
    /// instead of a training run when `spec` is `profile`; if it does not
    /// parse against the module, the compile *degrades* to the `heuristic`
    /// rules with a [`CompileDiag`] warning rather than failing — a stale
    /// or corrupted profile must never block compilation.
    pub alias_profile: Option<String>,
    /// Render the per-site likeliness-oracle decision table
    /// (`--explain-spec`) into [`CompileOutput::explain`].
    pub explain_spec: bool,
    /// Persistent compile-cache directory (`--cache-dir` /
    /// `SPECFRAME_CACHE_DIR`). `None` disables caching. Hits replay stored
    /// lowerings; output stays byte-identical to an uncached compile.
    pub cache_dir: Option<std::path::PathBuf>,
    /// Storage fault injection over the cache backend
    /// (`--cache-fault-policy`, e.g. `enospc:3` / `eio-read:7:2` /
    /// `torn-write:2` / `latency:5`). Module output stays byte-identical
    /// under every policy; only the fault counters (and wall time) move.
    pub cache_fault_policy: Option<String>,
    /// Transient cache-I/O retry budget per storage operation
    /// (`--cache-retries`).
    pub cache_retries: u32,
    /// Session-wide cache circuit breaker. Cloning a request shares it,
    /// which is exactly what the serve loop wants: once storage proves
    /// broken, every later request in the session compiles cache-off
    /// instead of rediscovering the failure.
    pub cache_health: std::sync::Arc<CacheHealth>,
    /// Per-request compile deadline in milliseconds (`--deadline-ms`).
    /// Enforced cooperatively at pass boundaries and between functions; an
    /// exceeded deadline fails the compile with exit/service code 5 and
    /// writes no cache entries.
    pub deadline_ms: Option<u64>,
    /// Execution target: `epic|swr` (`--target`). Selects the lowering
    /// hooks and the cost model the profitability oracle weighs, so the
    /// same input can motion differently per target.
    pub target: String,
}

impl Default for CompileRequest {
    fn default() -> Self {
        CompileRequest {
            entry: "main".into(),
            args: Vec::new(),
            train_args: None,
            spec: "none".into(),
            control: "off".into(),
            strength_reduction: true,
            lftr: true,
            store_sinking: false,
            jobs: 1,
            hooks: PipelineHooks::default(),
            fuel: 100_000_000,
            alias_profile: None,
            explain_spec: false,
            cache_dir: None,
            cache_fault_policy: None,
            cache_retries: DEFAULT_RETRY_BUDGET,
            cache_health: std::sync::Arc::new(CacheHealth::default()),
            deadline_ms: None,
            target: "epic".into(),
        }
    }
}

/// A failed compile session, classified for exit-code purposes.
#[derive(Debug, Clone)]
pub enum CompileFailure {
    /// Bad invocation: unknown flag value, missing entry function,
    /// unreadable input file. Exit code 1.
    Usage(String),
    /// The input program did not parse or verify. Exit code 2.
    Parse(String),
    /// The pipeline itself failed — profiling run error, internal pass
    /// failure, or a result mismatch against the reference interpreter.
    /// Exit code 3, or 4 when even the non-speculative recompile of some
    /// function failed ([`CompileError::fallback_exhausted`]).
    Compile(CompileError),
}

impl CompileFailure {
    /// The process exit code for this failure family.
    pub fn exit_code(&self) -> u8 {
        match self {
            CompileFailure::Usage(_) => 1,
            CompileFailure::Parse(_) => 2,
            CompileFailure::Compile(e) if e.fallback_exhausted => 4,
            CompileFailure::Compile(e) if e.is_deadline() => 5,
            CompileFailure::Compile(_) => 3,
        }
    }

    /// Wraps a pipeline-level error that is not tied to one function.
    fn internal(pass: &str, message: String) -> Self {
        CompileFailure::Compile(CompileError {
            function: String::new(),
            pass: pass.to_string(),
            message,
            fallback_exhausted: false,
        })
    }
}

impl std::fmt::Display for CompileFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileFailure::Usage(m) | CompileFailure::Parse(m) => f.write_str(m),
            CompileFailure::Compile(e) => write!(f, "{e}"),
        }
    }
}

impl From<CompileError> for CompileFailure {
    fn from(e: CompileError) -> Self {
        CompileFailure::Compile(e)
    }
}

impl From<CompileFailure> for String {
    fn from(e: CompileFailure) -> Self {
        e.to_string()
    }
}

/// A finished compile session.
#[derive(Debug)]
pub struct CompileOutput {
    /// The optimized module.
    pub module: Module,
    /// Optimizer statistics, per-pass timings and degradation warnings.
    pub report: OptReport,
    /// Snapshots requested via [`PipelineHooks::dump_after`], in function
    /// then pipeline order (render with [`specframe_core::render_dumps`]).
    pub dumps: Vec<PassDump>,
    /// The alias profile the compile used, when one was collected by a
    /// training run or supplied via [`CompileRequest::alias_profile`] —
    /// what `specc --save-alias-profile` serializes.
    pub alias_profile: Option<AliasProfile>,
    /// The `--explain-spec` decision table, when requested: one line per
    /// χ/μ-carrying site with the oracle's source, evidence and the
    /// flagged counts.
    pub explain: Option<String>,
}

/// Parses, verifies and [`compile_module`]s `src`.
pub fn compile(src: &str, req: &CompileRequest) -> Result<CompileOutput, CompileFailure> {
    let m = parse_module(src).map_err(|e| CompileFailure::Parse(e.to_string()))?;
    verify_module(&m).map_err(|e| CompileFailure::Parse(e.to_string()))?;
    compile_module(m, req)
}

/// Runs the speculative pipeline over an already-verified module:
/// critical-edge preparation, alias-profile ingestion or a profiling
/// interpreter run when a profile-guided mode is requested, then the
/// optimizer with the requested hooks.
pub fn compile_module(
    mut m: Module,
    req: &CompileRequest,
) -> Result<CompileOutput, CompileFailure> {
    prepare_module(&mut m);

    let target = TargetId::parse(&req.target).ok_or_else(|| {
        CompileFailure::Usage(format!(
            "unknown --target `{}` (expected epic|swr)",
            req.target
        ))
    })?;

    // Degradation diagnostics raised before the optimizer runs; prepended
    // to the report's warning list afterwards.
    let mut pre_warnings: Vec<CompileDiag> = Vec::new();

    let mut spec = req.spec.as_str();
    let mut aprof: Option<AliasProfile> = None;
    if spec == "profile" {
        if let Some(text) = &req.alias_profile {
            match parse_alias_profile(text, &m) {
                Ok(p) => aprof = Some(p),
                Err(e) => {
                    // §3.2: without a usable profile the framework falls
                    // back to the speculative alias heuristics.
                    pre_warnings.push(CompileDiag {
                        function: String::new(),
                        pass: "alias-profile".into(),
                        message: format!(
                            "alias profile unusable ({e}); \
                             falling back to heuristic speculation rules"
                        ),
                    });
                    spec = "heuristic";
                }
            }
        }
    }

    // profiling run, when a profile-guided mode still needs one
    let needs_profile = (spec == "profile" && aprof.is_none()) || req.control == "profile";
    let mut eprof = None;
    if needs_profile {
        if m.func_by_name(&req.entry).is_none() {
            return Err(CompileFailure::Usage(format!(
                "profile-guided compile needs entry function `{}`",
                req.entry
            )));
        }
        let train = req.train_args.as_ref().unwrap_or(&req.args);
        let mut ap = AliasProfiler::new();
        let mut ep = EdgeProfiler::new();
        {
            let mut obs = specframe_profile::observer::Compose(vec![&mut ap, &mut ep]);
            run_with(&m, &req.entry, train, req.fuel, &mut obs).map_err(|e| {
                CompileFailure::internal("profile", format!("profiling run failed: {e}"))
            })?;
        }
        if aprof.is_none() {
            aprof = Some(ap.finish());
        }
        eprof = Some(ep.finish());
    }

    let data = match spec {
        "none" => SpecSource::None,
        "profile" => SpecSource::Profile(aprof.as_ref().unwrap()),
        "heuristic" => SpecSource::Heuristic,
        "aggressive" => SpecSource::Aggressive,
        other => return Err(CompileFailure::Usage(format!("unknown --spec `{other}`"))),
    };
    let control = match req.control.as_str() {
        "off" => ControlSpec::Off,
        "profile" => ControlSpec::Profile(eprof.as_ref().unwrap()),
        "static" => ControlSpec::Static,
        other => {
            return Err(CompileFailure::Usage(format!(
                "unknown --control `{other}`"
            )))
        }
    };

    // the decision table reflects construction-time verdicts, so render it
    // on the prepared module before the optimizer consumes the flags
    let explain = if req.explain_spec {
        let mode = match data {
            SpecSource::None => SpecMode::NoSpeculation,
            SpecSource::Profile(p) => SpecMode::Profile(p),
            SpecSource::Heuristic => SpecMode::Heuristic,
            SpecSource::Aggressive => SpecMode::Aggressive,
        };
        Some(render_explain_spec(&m, mode, target))
    } else {
        None
    };

    // per-request deadline: a cooperative token on the hooks, plus a
    // watchdog thread that trips it the moment the clock runs out (joined
    // on drop, so an in-time compile leaves nothing behind). The token is
    // not part of the cache key — deadlines never change output bytes.
    let mut hooks = req.hooks.clone();
    if let Some(ms) = req.deadline_ms {
        hooks.cancel = CancelToken::deadline_in(std::time::Duration::from_millis(ms));
    }
    let _watchdog = Watchdog::arm(&hooks.cancel);
    // the profiling run above predates the first pass boundary; gate here
    // so a blown training run still honors the deadline
    if hooks.cancel.cancelled() {
        return Err(CompileFailure::Compile(CompileError::deadline("")));
    }

    let fcache = match &req.cache_dir {
        None => None,
        Some(dir) => {
            let mut c = FuncCache::open(dir)
                .with_retry_budget(req.cache_retries)
                .with_health(std::sync::Arc::clone(&req.cache_health));
            if let Some(spec) = &req.cache_fault_policy {
                let policy = parse_store_fault_policy(spec).map_err(CompileFailure::Usage)?;
                c = c.with_fault_policy(policy);
            }
            Some(c)
        }
    };
    let (mut report, dumps) = try_optimize_cached(
        &mut m,
        &OptOptions {
            data,
            control,
            strength_reduction: req.strength_reduction,
            lftr: req.strength_reduction && req.lftr,
            store_sinking: req.store_sinking,
            target,
        },
        &PipelineConfig { jobs: req.jobs },
        &hooks,
        fcache.as_ref(),
    )?;
    if !pre_warnings.is_empty() {
        pre_warnings.append(&mut report.warnings);
        report.warnings = pre_warnings;
    }
    Ok(CompileOutput {
        module: m,
        report,
        dumps,
        alias_profile: aprof,
        explain,
    })
}

/// Renders the `--explain-spec` table: for every χ/μ-carrying site of
/// every function, the likeliness oracle's verdict evidence and how many
/// of the site's χs/μs were flagged likely. Functions in module order,
/// sites in block/statement order, so the output is deterministic.
pub fn render_explain_spec(m: &Module, mode: SpecMode<'_>, target: TargetId) -> String {
    let aa = AliasAnalysis::analyze(m);
    let costs = target_spec_costs(target);
    let oracle = Likeliness::with_costs(mode, costs);
    let mut s = format!(
        "=== speculation decisions (source: {}, target: {}) ===\n",
        oracle.source_name(),
        target.name()
    );
    // the per-type profitability verdicts the kernel gates speculation on:
    // a load only speculates when its latency beats the check overhead
    let verdict = |ty: Ty| {
        if costs.profitable(ty) {
            "speculate"
        } else {
            "keep"
        }
    };
    s.push_str(&format!(
        "profitability (check {}c): i64 load {}c -> {}, f64 load {}c -> {}\n",
        costs.check_cost,
        costs.int_load,
        verdict(Ty::I64),
        costs.fp_load,
        verdict(Ty::F64),
    ));
    for fi in 0..m.funcs.len() {
        let fid = FuncId::from_index(fi);
        let f = m.func(fid);
        let ev = oracle.scan(f);
        let hf = build_hssa(m, fid, &aa, mode);
        s.push_str(&format!("func {}:\n", f.name));
        let mut any = false;
        for (bi, blk) in hf.blocks.iter().enumerate() {
            for stmt in &blk.stmts {
                if stmt.chi.is_empty() && stmt.mu.is_empty() {
                    continue;
                }
                // the headline decision per site kind: a store's χ over its
                // access class, a load's μ over its class, a call's kept μs
                let (label, why) = match &stmt.kind {
                    HStmtKind::Store {
                        base, offset, site, ..
                    } => {
                        let syntax = match base {
                            HOperand::Reg(v, _) => Some((*v, *offset)),
                            _ => None,
                        };
                        let v = oracle.verdict(
                            &ev,
                            SiteQuery::StoreChiVirt {
                                site: *site,
                                syntax,
                            },
                        );
                        (format!("mem site {:>3} (store, block {bi})", site.0), v.why)
                    }
                    HStmtKind::Load { site, .. } | HStmtKind::CheckLoad { site, .. } => {
                        let v = oracle.verdict(&ev, SiteQuery::LoadMuVirt { site: *site });
                        (format!("mem site {:>3} (load, block {bi})", site.0), v.why)
                    }
                    HStmtKind::Call { site, .. } => {
                        let v = oracle.verdict(&ev, SiteQuery::CallMuVirt);
                        (format!("call site {:>2} (block {bi})", site.0), v.why)
                    }
                    _ => continue,
                };
                let chi_f = stmt.chi.iter().filter(|c| c.likely).count();
                let mu_f = stmt.mu.iter().filter(|u| u.likely).count();
                s.push_str(&format!(
                    "  {label}: {chi_f}/{} chi flagged, {mu_f}/{} mu flagged — {}\n",
                    stmt.chi.len(),
                    stmt.mu.len(),
                    why.describe()
                ));
                any = true;
            }
        }
        if !any {
            s.push_str("  (no speculative sites)\n");
        }
    }
    s
}

/// Shrinks a failing module to a minimal reproducer (`specc --reduce`,
/// `fuzzdiff --reduce-on-failure`).
///
/// The reduction predicate re-runs the compile session on every candidate
/// and accepts it only when it fails in the *same class* as `original`
/// — same exit-code family and same failing pass — so the reducer cannot
/// drift onto a different bug. For result-mismatch failures (`original`
/// names the `run`/`sim` pass), pass `run_check`: candidates then must
/// compile cleanly and *diverge* from the reference interpreter on the
/// given entry/args, the divergence being the preserved failure.
pub fn reduce_failure(
    m: &Module,
    req: &CompileRequest,
    original: &CompileFailure,
    run_check: Option<(&str, &[Value], u64)>,
) -> (Module, specframe_core::ReduceStats) {
    let code = original.exit_code();
    let (orig_pass, is_miscompile) = match original {
        CompileFailure::Compile(e) => (e.pass.clone(), matches!(e.pass.as_str(), "run" | "sim")),
        _ => (String::new(), false),
    };
    let mut pred = |cand: &Module| -> bool {
        // a candidate that no longer verifies fails for a different
        // reason than the original — reject it
        if verify_module(cand).is_err() {
            return false;
        }
        match compile_module(cand.clone(), req) {
            Err(e) => {
                !is_miscompile
                    && e.exit_code() == code
                    && match &e {
                        CompileFailure::Compile(ce) => ce.pass == orig_pass,
                        _ => true,
                    }
            }
            Ok(out) => {
                let Some((entry, args, fuel)) = run_check else {
                    return false;
                };
                if !is_miscompile {
                    return false;
                }
                let mut reference = cand.clone();
                prepare_module(&mut reference);
                match (
                    specframe_profile::run(&reference, entry, args, fuel),
                    specframe_profile::run(&out.module, entry, args, fuel),
                ) {
                    (Ok((want, _)), Ok((got, _))) => want != got,
                    _ => false,
                }
            }
        }
    };
    specframe_core::reduce_module(m, &mut pred)
}

/// Lowers `m` for the default (epic) target, simulates it under the named
/// ALAT fault policy, and renders the `specc --sim` counter block. Returns
/// the machine result and the rendered text; `specc` prints it to stderr
/// and golden tests CHECK it directly, so the two can never drift apart.
pub fn simulate_text(
    m: &Module,
    entry: &str,
    args: &[Value],
    fuel: u64,
    fault_policy: &str,
) -> Result<(Option<Value>, String), CompileFailure> {
    simulate_text_on(m, TargetId::Epic, entry, args, fuel, fault_policy)
}

/// [`simulate_text`] for an explicit execution target: the lowering uses
/// the target's hooks and the simulator its cost table and check
/// semantics, so `--target=swr --sim` prices software checks honestly.
pub fn simulate_text_on(
    m: &Module,
    target: TargetId,
    entry: &str,
    args: &[Value],
    fuel: u64,
    fault_policy: &str,
) -> Result<(Option<Value>, String), CompileFailure> {
    let policy = parse_fault_policy(fault_policy).map_err(CompileFailure::Usage)?;
    let name = policy.name();
    let prog = lower_module_for(m, target.spec());
    let (got, c) = run_machine_with_policy_on(&prog, target.spec(), entry, args, fuel, policy)
        .map_err(|e| CompileFailure::internal("simulate", format!("simulation failed: {e}")))?;
    Ok((got, render_sim_counters(&name, got, &c)))
}

/// Extra simulator behavior shared by `specc --sim` and golden RUN lines:
/// taint-mode secret marking and machine-level leak fencing.
#[derive(Debug, Clone, Default)]
pub struct SimOptions {
    /// Secret locations (`--taint-secret LOC[,LOC...]`): each `@name`
    /// marks every word of that global as secret; a bare integer marks a
    /// single word address. Non-empty switches the simulator into taint
    /// mode (leak counters and per-site leak lines appear in the output).
    pub taint_secret: Vec<String>,
    /// Apply the machine-level leak-fencing transform to the lowering
    /// before simulating (`--fence-leaks` + `--sim`), so the inserted
    /// barriers and their cycle cost are observable in the counters.
    pub fence_leaks: bool,
    /// Execution target the simulation lowers for (`--target`).
    pub target: TargetId,
}

impl SimOptions {
    /// Whether these options change anything over plain [`simulate_text`].
    pub fn is_active(&self) -> bool {
        !self.taint_secret.is_empty() || self.fence_leaks
    }
}

/// Resolves `--taint-secret` specs against a module's global layout:
/// `@name` expands to every word address of that global, a bare integer
/// is taken as one word address verbatim.
fn resolve_secret_locs(m: &Module, specs: &[String]) -> Result<Vec<i64>, CompileFailure> {
    let layout = m.global_layout();
    let mut out = Vec::new();
    for spec in specs {
        let spec = spec.trim();
        if let Some(name) = spec.strip_prefix('@') {
            let Some(gi) = m.globals.iter().position(|g| g.name == name) else {
                return Err(CompileFailure::Usage(format!(
                    "--taint-secret: unknown global `@{name}`"
                )));
            };
            for w in 0..i64::from(m.globals[gi].words) {
                out.push(layout[gi] + w);
            }
        } else {
            let addr: i64 = spec.parse().map_err(|_| {
                CompileFailure::Usage(format!(
                    "--taint-secret: expected `@global` or a word address, got `{spec}`"
                ))
            })?;
            out.push(addr);
        }
    }
    Ok(out)
}

/// [`simulate_text`] with taint tracking and optional leak fencing: lowers
/// `m` (through the fencing transform when requested), runs the
/// taint-mode simulator with the resolved secret set, and appends the
/// taint counter rows and per-site leak lines after the ordinary counter
/// block. With inactive `opts` this is exactly [`simulate_text`], so the
/// pinned counter layout of non-taint golden tests never changes.
pub fn simulate_text_with(
    m: &Module,
    entry: &str,
    args: &[Value],
    fuel: u64,
    fault_policy: &str,
    opts: &SimOptions,
) -> Result<(Option<Value>, String), CompileFailure> {
    if !opts.is_active() {
        return simulate_text_on(m, opts.target, entry, args, fuel, fault_policy);
    }
    let policy = parse_fault_policy(fault_policy).map_err(CompileFailure::Usage)?;
    let name = policy.name();
    let secrets = resolve_secret_locs(m, &opts.taint_secret)?;
    let prog = if opts.fence_leaks {
        lower_module_fenced_for(m, opts.target.spec()).0
    } else {
        lower_module_for(m, opts.target.spec())
    };
    let rep = run_machine_taint_on(
        &prog,
        opts.target.spec(),
        entry,
        args,
        fuel,
        policy,
        &secrets,
    )
    .map_err(|e| CompileFailure::internal("simulate", format!("simulation failed: {e}")))?;
    let mut text = render_sim_counters(&name, rep.result, &rep.counters);
    text.push_str(&render_taint_counters(&rep.counters, &rep.events));
    Ok((rep.result, text))
}

/// The taint-mode extension of the `--sim` counter block: the leak/fence
/// counters in the same `name = value` layout, then one `leak:` line per
/// distinct dynamic taint-to-sink site. Kept out of
/// [`render_sim_counters`] so the plain counter block — pinned by
/// existing golden tests — keeps its exact shape.
pub fn render_taint_counters(c: &Counters, events: &[LeakEvent]) -> String {
    let mut s = String::new();
    {
        let mut line = |k: &str, v: String| s.push_str(&format!("{k:<21}= {v}\n"));
        line("fences retired", c.fences_retired.to_string());
        line("taint loads", c.taint_loads.to_string());
        line("leak addr events", c.leak_addr_events.to_string());
        line("leak branch events", c.leak_branch_events.to_string());
        line("secret leak events", c.leak_secret_events.to_string());
    }
    for ev in events {
        s.push_str(&format!(
            "leak: {}@{}: speculative value from r{} reached {} sink{}\n",
            ev.func,
            ev.at,
            ev.origin,
            ev.sink,
            if ev.secret { " (secret)" } else { "" }
        ));
    }
    s
}

/// Renders adversarial-eviction witnesses for every static leak site in
/// `m`'s (unfenced) lowering: each flagged site is driven into actual
/// misspeculation by a seeded forced-eviction schedule constructed from a
/// probe run, or refuted when no schedule can reach it. The emitted
/// `evict-at:N` policy string is replayable via `--fault-policy`, so a
/// leak repro shrinks to a `.spec`-ready case with `specc --reduce` plus
/// one `--sim` run. Empty string when the lowering audits clean.
pub fn witness_leaks_text(
    m: &Module,
    target: TargetId,
    entry: &str,
    args: &[Value],
    fuel: u64,
) -> String {
    let prog = lower_module_for(m, target.spec());
    let sites = leak_audit_program(&prog);
    if sites.is_empty() {
        return String::new();
    }
    let mut s = String::new();
    for w in witness_leaks_on(&prog, target.spec(), entry, args, fuel, &sites) {
        match &w.policy {
            Some(p) => s.push_str(&format!(
                "leak witness: {} — CONFIRMED under `--fault-policy {p}` ({})\n",
                w.site, w.note
            )),
            None => s.push_str(&format!(
                "leak witness: {} — refuted ({})\n",
                w.site, w.note
            )),
        }
    }
    s
}

/// The `--sim` counter block: one `name = value` line per counter, fault
/// policy first so multi-policy runs are self-describing.
pub fn render_sim_counters(policy: &str, result: Option<Value>, c: &Counters) -> String {
    let mut s = String::new();
    let mut line = |k: &str, v: String| s.push_str(&format!("{k:<21}= {v}\n"));
    line("fault policy", policy.to_string());
    line("result", format!("{result:?}"));
    line("cycles", c.cycles.to_string());
    line("loads retired", c.loads_retired.to_string());
    line("check loads", c.check_loads.to_string());
    line("failed checks", c.failed_checks.to_string());
    line("check ratio", format!("{:.2}%", c.check_ratio() * 100.0));
    line(
        "mis-speculation",
        format!("{:.2}%", c.mis_speculation_ratio() * 100.0),
    );
    line("alat inserts", c.alat_inserts.to_string());
    line("alat fault kills", c.alat_fault_kills.to_string());
    line("alat flash clears", c.alat_flash_clears.to_string());
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use specframe_core::{render_dumps, Pass, PassSet};

    const DIAMOND: &str = r#"
func f(a: i64, b: i64, sel: i64) -> i64 {
  var x: i64
  var y: i64
entry:
  br sel, have, nothave
have:
  x = add a, b
  jmp merge
nothave:
  x = 0
  jmp merge
merge:
  y = add a, b
  x = add x, y
  ret x
}
"#;

    #[test]
    fn compile_without_profiling_needs_no_entry() {
        // `f`, not `main` — heuristic mode never runs the interpreter
        let req = CompileRequest {
            spec: "heuristic".into(),
            control: "static".into(),
            ..Default::default()
        };
        let out = compile(DIAMOND, &req).unwrap();
        assert!(out.report.stats.reloads >= 1);
    }

    #[test]
    fn dump_after_ssapre_shows_pre_insertion() {
        let req = CompileRequest {
            spec: "heuristic".into(),
            control: "static".into(),
            hooks: PipelineHooks {
                dump_after: PassSet::from_iter([Pass::Ssapre]),
                ..Default::default()
            },
            ..Default::default()
        };
        let out = compile(DIAMOND, &req).unwrap();
        assert_eq!(out.dumps.len(), 1);
        let text = render_dumps(&out.dumps);
        assert!(
            text.contains("; === dump-after ssapre: func f ==="),
            "{text}"
        );
        assert!(text.contains("hssa func f {"), "{text}");
    }

    #[test]
    fn stop_after_refine_is_identity_module() {
        let req = CompileRequest {
            hooks: PipelineHooks {
                stop_after: Some(Pass::Refine),
                ..Default::default()
            },
            ..Default::default()
        };
        let out = compile(DIAMOND, &req).unwrap();
        // nothing optimized: both adds still present
        let printed = specframe_ir::display::print_module(&out.module);
        assert_eq!(printed.matches("add a, b").count(), 2, "{printed}");
    }

    #[test]
    fn stop_after_hssa_roundtrips_through_lowering() {
        let req = CompileRequest {
            hooks: PipelineHooks {
                stop_after: Some(Pass::Hssa),
                ..Default::default()
            },
            ..Default::default()
        };
        let out = compile(DIAMOND, &req).unwrap();
        let args = [Value::I(3), Value::I(4), Value::I(1)];
        let m0 = parse_module(DIAMOND).unwrap();
        let (want, _) = specframe_profile::run(&m0, "f", &args, 1_000_000).unwrap();
        let (got, _) = specframe_profile::run(&out.module, "f", &args, 1_000_000).unwrap();
        assert_eq!(want, got);
    }

    #[test]
    fn failure_families_map_to_distinct_exit_codes() {
        assert_eq!(CompileFailure::Usage("x".into()).exit_code(), 1);
        assert_eq!(CompileFailure::Parse("x".into()).exit_code(), 2);
        let mut e = CompileError {
            function: "f".into(),
            pass: "ssapre".into(),
            message: "boom".into(),
            fallback_exhausted: false,
        };
        assert_eq!(CompileFailure::Compile(e.clone()).exit_code(), 3);
        e.fallback_exhausted = true;
        assert_eq!(CompileFailure::Compile(e).exit_code(), 4);
    }

    #[test]
    fn parse_error_classified_as_parse() {
        let err = compile("func f(", &CompileRequest::default()).unwrap_err();
        assert!(matches!(err, CompileFailure::Parse(_)), "{err}");
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn corrupt_alias_profile_degrades_to_heuristics_with_warning() {
        let req = CompileRequest {
            spec: "profile".into(),
            control: "static".into(),
            alias_profile: Some("not a profile at all".into()),
            ..Default::default()
        };
        // entry `main` does not exist; a degraded (heuristic) compile must
        // not need it, proving no training run happened.
        let out = compile(DIAMOND, &req).unwrap();
        assert_eq!(out.report.warnings.len(), 1, "{:?}", out.report.warnings);
        let w = &out.report.warnings[0];
        assert_eq!(w.pass, "alias-profile");
        assert!(w.message.contains("falling back to heuristic"), "{w}");
        // heuristic rules did fire on the diamond
        assert!(out.report.stats.reloads >= 1);
    }

    #[test]
    fn valid_alias_profile_is_used_without_training_run() {
        // profile collected by hand, serialized, then fed back in — with no
        // entry function available, so any training-run attempt would fail
        let src = r#"
global a: i64[1]
global b: i64[1]

func leaf(sel: i64) -> i64 {
  var p: ptr
  var v: i64
entry:
  br sel, yes, no
yes:
  p = @a
  jmp go
no:
  p = @b
  jmp go
go:
  v = load.i64 [p]
  ret v
}
"#;
        let mut m0 = parse_module(src).unwrap();
        prepare_module(&mut m0);
        let mut ap = AliasProfiler::new();
        run_with(&m0, "leaf", &[Value::I(1)], 100_000, &mut ap).unwrap();
        let text = specframe_profile::write_alias_profile(&ap.finish());

        let req = CompileRequest {
            spec: "profile".into(),
            entry: "nonexistent".into(),
            alias_profile: Some(text),
            ..Default::default()
        };
        let out = compile(src, &req).unwrap();
        assert!(out.report.warnings.is_empty(), "{:?}", out.report.warnings);
        assert!(out.alias_profile.is_some());
    }

    #[test]
    fn simulate_text_renders_fault_policy_counters() {
        let req = CompileRequest {
            spec: "heuristic".into(),
            control: "static".into(),
            ..Default::default()
        };
        let out = compile(DIAMOND, &req).unwrap();
        let args = [Value::I(3), Value::I(4), Value::I(1)];
        let (got, text) = simulate_text(&out.module, "f", &args, 1_000_000, "always-miss").unwrap();
        assert_eq!(got, Some(Value::I(14)));
        assert!(
            text.contains("fault policy         = always-miss"),
            "{text}"
        );
        assert!(text.contains("alat fault kills     = "), "{text}");
        // bad policy name is a usage error (exit 1)
        let err = simulate_text(&out.module, "f", &args, 1_000, "bogus").unwrap_err();
        assert_eq!(err.exit_code(), 1);
    }
}
