//! One-call compile sessions over the speculative pipeline.
//!
//! `specc` and the `spectest` golden-test runner both need the same
//! sequence — parse, verify, prepare, (optionally) profile on a training
//! input, then run [`specframe_core::optimize_with_hooks`] — with the same
//! flag vocabulary. This module is that shared seam, so a `; RUN: specc …`
//! line in a golden test exercises exactly the code path the CLI does,
//! without spawning a subprocess.

use specframe_core::{
    optimize_with_hooks, prepare_module, ControlSpec, OptOptions, OptReport, PassDump,
    PipelineConfig, PipelineHooks, SpecSource,
};
use specframe_ir::{parse_module, verify_module, Module, Value};
use specframe_profile::{run_with, AliasProfiler, EdgeProfiler};

/// Everything a compile session needs besides the program text. The
/// string-typed fields (`spec`, `control`) use the `specc` CLI vocabulary
/// so RUN lines and the driver parse identically.
#[derive(Debug, Clone)]
pub struct CompileRequest {
    /// Entry function for profiling runs (`--entry`).
    pub entry: String,
    /// Reference arguments (`--args`); also the training arguments unless
    /// [`CompileRequest::train_args`] overrides them.
    pub args: Vec<Value>,
    /// Training-run arguments (`--train-args`); `None` means use `args`.
    pub train_args: Option<Vec<Value>>,
    /// Data speculation source: `none|profile|heuristic|aggressive`.
    pub spec: String,
    /// Control speculation source: `off|profile|static`.
    pub control: String,
    /// Run strength reduction / LFTR (off with `--no-sr`).
    pub strength_reduction: bool,
    /// Run store promotion (`--store-sinking`).
    pub store_sinking: bool,
    /// Worker threads (`--jobs`, 0 = auto).
    pub jobs: usize,
    /// Snapshot/stop requests (`--dump-after` / `--stop-after`).
    pub hooks: PipelineHooks,
    /// Interpreter fuel for profiling runs.
    pub fuel: u64,
}

impl Default for CompileRequest {
    fn default() -> Self {
        CompileRequest {
            entry: "main".into(),
            args: Vec::new(),
            train_args: None,
            spec: "none".into(),
            control: "off".into(),
            strength_reduction: true,
            store_sinking: false,
            jobs: 1,
            hooks: PipelineHooks::default(),
            fuel: 100_000_000,
        }
    }
}

/// A finished compile session.
#[derive(Debug)]
pub struct CompileOutput {
    /// The optimized module.
    pub module: Module,
    /// Optimizer statistics and per-pass timings.
    pub report: OptReport,
    /// Snapshots requested via [`PipelineHooks::dump_after`], in function
    /// then pipeline order (render with [`specframe_core::render_dumps`]).
    pub dumps: Vec<PassDump>,
}

/// Parses, verifies and [`compile_module`]s `src`.
pub fn compile(src: &str, req: &CompileRequest) -> Result<CompileOutput, String> {
    let m = parse_module(src).map_err(|e| e.to_string())?;
    verify_module(&m).map_err(|e| e.to_string())?;
    compile_module(m, req)
}

/// Runs the speculative pipeline over an already-verified module:
/// critical-edge preparation, a profiling interpreter run when either
/// speculation source is `profile`, then the optimizer with the
/// requested hooks.
pub fn compile_module(mut m: Module, req: &CompileRequest) -> Result<CompileOutput, String> {
    prepare_module(&mut m);

    // profiling run, when any profile-guided mode is requested
    let needs_profile = req.spec == "profile" || req.control == "profile";
    let mut aprof = None;
    let mut eprof = None;
    if needs_profile {
        if m.func_by_name(&req.entry).is_none() {
            return Err(format!(
                "profile-guided compile needs entry function `{}`",
                req.entry
            ));
        }
        let train = req.train_args.as_ref().unwrap_or(&req.args);
        let mut ap = AliasProfiler::new();
        let mut ep = EdgeProfiler::new();
        {
            let mut obs = specframe_profile::observer::Compose(vec![&mut ap, &mut ep]);
            run_with(&m, &req.entry, train, req.fuel, &mut obs)
                .map_err(|e| format!("profiling run failed: {e}"))?;
        }
        aprof = Some(ap.finish());
        eprof = Some(ep.finish());
    }

    let data = match req.spec.as_str() {
        "none" => SpecSource::None,
        "profile" => SpecSource::Profile(aprof.as_ref().unwrap()),
        "heuristic" => SpecSource::Heuristic,
        "aggressive" => SpecSource::Aggressive,
        other => return Err(format!("unknown --spec `{other}`")),
    };
    let control = match req.control.as_str() {
        "off" => ControlSpec::Off,
        "profile" => ControlSpec::Profile(eprof.as_ref().unwrap()),
        "static" => ControlSpec::Static,
        other => return Err(format!("unknown --control `{other}`")),
    };

    let (report, dumps) = optimize_with_hooks(
        &mut m,
        &OptOptions {
            data,
            control,
            strength_reduction: req.strength_reduction,
            store_sinking: req.store_sinking,
        },
        &PipelineConfig { jobs: req.jobs },
        &req.hooks,
    );
    Ok(CompileOutput {
        module: m,
        report,
        dumps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use specframe_core::{render_dumps, Pass, PassSet};

    const DIAMOND: &str = r#"
func f(a: i64, b: i64, sel: i64) -> i64 {
  var x: i64
  var y: i64
entry:
  br sel, have, nothave
have:
  x = add a, b
  jmp merge
nothave:
  x = 0
  jmp merge
merge:
  y = add a, b
  x = add x, y
  ret x
}
"#;

    #[test]
    fn compile_without_profiling_needs_no_entry() {
        // `f`, not `main` — heuristic mode never runs the interpreter
        let req = CompileRequest {
            spec: "heuristic".into(),
            control: "static".into(),
            ..Default::default()
        };
        let out = compile(DIAMOND, &req).unwrap();
        assert!(out.report.stats.reloads >= 1);
    }

    #[test]
    fn dump_after_ssapre_shows_pre_insertion() {
        let req = CompileRequest {
            spec: "heuristic".into(),
            control: "static".into(),
            hooks: PipelineHooks {
                dump_after: PassSet::from_iter([Pass::Ssapre]),
                ..Default::default()
            },
            ..Default::default()
        };
        let out = compile(DIAMOND, &req).unwrap();
        assert_eq!(out.dumps.len(), 1);
        let text = render_dumps(&out.dumps);
        assert!(
            text.contains("; === dump-after ssapre: func f ==="),
            "{text}"
        );
        assert!(text.contains("hssa func f {"), "{text}");
    }

    #[test]
    fn stop_after_refine_is_identity_module() {
        let req = CompileRequest {
            hooks: PipelineHooks {
                stop_after: Some(Pass::Refine),
                ..Default::default()
            },
            ..Default::default()
        };
        let out = compile(DIAMOND, &req).unwrap();
        // nothing optimized: both adds still present
        let printed = specframe_ir::display::print_module(&out.module);
        assert_eq!(printed.matches("add a, b").count(), 2, "{printed}");
    }

    #[test]
    fn stop_after_hssa_roundtrips_through_lowering() {
        let req = CompileRequest {
            hooks: PipelineHooks {
                stop_after: Some(Pass::Hssa),
                ..Default::default()
            },
            ..Default::default()
        };
        let out = compile(DIAMOND, &req).unwrap();
        let args = [Value::I(3), Value::I(4), Value::I(1)];
        let m0 = parse_module(DIAMOND).unwrap();
        let (want, _) = specframe_profile::run(&m0, "f", &args, 1_000_000).unwrap();
        let (got, _) = specframe_profile::run(&out.module, "f", &args, 1_000_000).unwrap();
        assert_eq!(want, got);
    }
}
