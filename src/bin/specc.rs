//! `specc` — the specframe compiler driver.
//!
//! ```text
//! specc INPUT.ir [options]
//!
//!   --entry NAME          entry function (default: main)
//!   --args N,N,...        arguments for --run / --sim / profiling
//!   --train-args N,N,...  profiling-run arguments (default: --args)
//!   --spec MODE           data speculation: none|profile|heuristic|aggressive
//!                         (default: profile)
//!   --control MODE        control speculation: off|profile|static
//!                         (default: profile)
//!   --target NAME         execution target: epic (hardware ALAT, default)
//!                         | swr (software checks: compare-and-branch
//!                         recovery, no ALAT). Selects the lowering hooks
//!                         and the cost model the profitability oracle
//!                         weighs, so motion decisions may differ per
//!                         target on the same input
//!   --no-sr               disable strength reduction (and with it LFTR)
//!   --no-lftr             disable linear-function test replacement only
//!   --store-sinking       enable store promotion
//!   --explain-spec        print the per-site likeliness-oracle decision
//!                         table (source, evidence, flagged χ/μ counts)
//!   --alias-profile FILE  reuse a saved alias profile instead of a training
//!                         run; an unusable profile degrades the compile to
//!                         the heuristic rules with a warning
//!   --save-alias-profile FILE
//!                         serialize the alias profile this compile used
//!   --emit WHAT           ir (optimized IR, default) | hssa (speculative
//!                         SSA dump of every function before optimization)
//!                         | mach (rendered machine code of the optimized
//!                         module lowered for the active --target)
//!   -o FILE               write the optimized IR to FILE (default: stdout)
//!   --run                 interpret the optimized program and print result
//!   --sim                 run it on the EPIC simulator and print counters
//!   --fault-policy SPEC   ALAT fault policy for --sim (repeatable):
//!                         default | geom:E:W | always-miss | forced-miss |
//!                         random:SEED[:DENOM] | flash-clear[:PERIOD] |
//!                         evict-at:N[:N...]
//!   --stats               print optimizer statistics
//!   --jobs N              worker threads for the per-function pipeline
//!                         (0 = auto: $SPECFRAME_JOBS, else all cores)
//!   --time-passes         print per-pass wall times to stderr
//!   --dump-after PASSES   print the textual form of every function after
//!                         each named stage and exit (comma-separated from:
//!                         refine, hssa, ssapre, strength, lftr, storeprom,
//!                         lower);
//!                         byte-deterministic at any --jobs level
//!   --stop-after PASS     run the pipeline only through the named stage
//!   --verify-each         run the structural verifier (IR level after
//!                         refine/lower, the HSSA checker after every
//!                         HSSA-level stage) at every pass boundary;
//!                         failures are attributed `pass=<p> fn=<f> bb=<n>`
//!                         and feed the per-function degradation ladder
//!   --audit-spec          after lowering, prove every advanced load in the
//!                         machine code is validated by a matching check on
//!                         every path (the speculation-safety auditor)
//!   --audit-leaks         after lowering, reject any function in whose
//!                         machine code an advanced-load value can reach an
//!                         address computation or branch condition before
//!                         its check (the speculative-leak auditor); each
//!                         reported site is then witnessed — or refuted —
//!                         by a seeded forced-eviction simulator run whose
//!                         `evict-at:N` policy string is printed for replay
//!   --fence-leaks         like --audit-leaks, but repair instead of
//!                         reject: a speculation barrier is inserted before
//!                         each flagged sink so the re-audit comes back
//!                         clean (the emitted IR is unchanged; fences are a
//!                         machine-level transform applied at lowering)
//!   --taint-secret LOC[,LOC...]
//!                         with --sim: mark secret inputs (`@global` marks
//!                         every word of that global, a bare integer one
//!                         word address), track potentially-misspeculated
//!                         flow into addresses and branch conditions during
//!                         each speculation window, and print the
//!                         taint/leak counter rows after the counter block
//!   --reduce              on a compile or result-mismatch failure, shrink
//!                         the input to a minimal module that still fails
//!                         the same way, print it with a `; reduce:` stats
//!                         header, and exit 0
//!   --inject-spec-fail FUNC / --inject-fallback-fail FUNC
//!                         fault-injection hooks for testing the recovery
//!                         path: make FUNC's (fallback) compile panic
//!   --inject-corrupt FUNC:PASS
//!                         corrupt FUNC's HSSA right after PASS, exercising
//!                         --verify-each and the per-pass rollback rung
//!   --cache-dir DIR       persistent per-function compile cache (also via
//!                         SPECFRAME_CACHE_DIR; the flag wins). Hits replay
//!                         stored lowerings byte-identically; stale or
//!                         corrupt entries degrade to a fresh compile with
//!                         a warning
//!   --cache-fault-policy SPEC
//!                         wrap the cache's storage in a seeded,
//!                         deterministic fault injector (exercises the
//!                         retry/circuit-breaker path): enospc:N |
//!                         eio-read:SEED[:DENOM] | torn-write:N |
//!                         latency:MS. Module output bytes never change
//!                         under any policy; only the retry / io-error
//!                         counters and cache warnings move
//!   --cache-retries N     transient cache-I/O retry budget per operation
//!                         (default: 2). Exhaustion — or any permanent
//!                         error such as ENOSPC — trips a per-session
//!                         circuit breaker that degrades the rest of the
//!                         session to cache-off with a warning
//!   --deadline-ms N       cooperative compile deadline: a watchdog arms a
//!                         cancellation token checked at pass boundaries
//!                         and between functions; on expiry the compile
//!                         aborts with exit code 5 and writes no partial
//!                         cache entries
//!   --serve               compile service: read requests from stdin
//!                         (`compile PATH [-o OUT] [--deadline-ms N]`,
//!                         `mega SEED[:FUNCS] [-o OUT]`, `stats`, `quit`),
//!                         answer one status line per request on stdout; a
//!                         deadline expiry answers `err ... code=5
//!                         msg=deadline` and the service keeps serving
//!   --serve-queue DIR     drain every *.req file in DIR (sorted), writing
//!                         <stem>.resp beside each, then exit. The drain is
//!                         crash-safe and idempotent: requests that already
//!                         have a .resp are skipped, malformed or
//!                         unreadable requests are quarantined to
//!                         <stem>.err (the drain keeps going), and an
//!                         open-time fsck sweeps orphaned .resp.tmp files
//!                         and stale cache .tmp-* debris left by a crash
//!   --verbose             with --serve: per-function `fn NAME outcome`
//!                         lines before each `ok` response
//!
//! Cache maintenance subcommands (need a cache directory):
//!
//!   specc cache stats  --cache-dir DIR   entry count and total bytes
//!   specc cache clear  --cache-dir DIR   remove every entry
//!   specc cache verify --cache-dir DIR   decode every entry; exit 2 and
//!                                        list offenders if any fail; also
//!                                        reports .tmp-* debris and sweeps
//!                                        the stale ones
//! ```
//!
//! Exit codes: 0 success, 1 usage/IO error, 2 input parse or verification
//! error, 3 compile/run failure, 4 speculative-compilation recovery
//! exhausted (even the non-speculative recompile failed), 5 deadline
//! exceeded (--deadline-ms expired before compilation finished).
//!
//! Example:
//!
//! ```text
//! specc kernel.ir --args 0,100 --spec profile --control static --sim \
//!       --fault-policy always-miss --fault-policy random:7
//! ```

use specframe::pipeline::CompileFailure;
use specframe::prelude::*;
use std::process::ExitCode;

struct Cli {
    input: String,
    /// `specc cache <action>` maintenance mode.
    cache_cmd: Option<String>,
    mega: Option<(u64, usize)>,
    entry: String,
    args: Vec<Value>,
    train_args: Vec<Value>,
    spec: String,
    control: String,
    target: String,
    sr: bool,
    lftr: bool,
    store_sinking: bool,
    explain_spec: bool,
    alias_profile: Option<String>,
    save_alias_profile: Option<String>,
    emit: String,
    out: Option<String>,
    run: bool,
    sim: bool,
    fault_policies: Vec<String>,
    stats: bool,
    jobs: usize,
    time_passes: bool,
    dump_after: PassSet,
    stop_after: Option<Pass>,
    inject_spec_fail: Option<String>,
    inject_fallback_fail: Option<String>,
    inject_corrupt: Option<(String, Pass)>,
    verify_each: bool,
    audit_spec: bool,
    audit_leaks: bool,
    fence_leaks: bool,
    taint_secret: Vec<String>,
    reduce: bool,
    fuel: u64,
    cache_dir: Option<std::path::PathBuf>,
    /// `--cache-fault-policy`: storage fault injection spec (validated at
    /// parse time, applied when the cache opens).
    cache_fault_policy: Option<String>,
    /// `--cache-retries`: transient cache-I/O retry budget per operation.
    cache_retries: u32,
    /// `--deadline-ms`: cooperative compile deadline in milliseconds.
    deadline_ms: Option<u64>,
    serve: bool,
    serve_queue: Option<std::path::PathBuf>,
    verbose: bool,
}

fn parse_values(s: &str) -> Result<Vec<Value>, String> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|t| {
            let t = t.trim();
            if t.contains('.') {
                t.parse::<f64>()
                    .map(Value::F)
                    .map_err(|e| format!("bad float `{t}`: {e}"))
            } else {
                t.parse::<i64>()
                    .map(Value::I)
                    .map_err(|e| format!("bad int `{t}`: {e}"))
            }
        })
        .collect()
}

/// Splits a `--taint-secret` argument (`LOC[,LOC...]`) into the CLI's
/// accumulated secret list; the specs resolve against the module's global
/// layout at simulation time.
fn push_taint_secrets(into: &mut Vec<String>, arg: &str) {
    into.extend(
        arg.split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string),
    );
}

fn parse_cli() -> Result<Cli, String> {
    let mut args = std::env::args().skip(1);
    let mut cli = Cli {
        input: String::new(),
        cache_cmd: None,
        mega: None,
        entry: "main".into(),
        args: Vec::new(),
        train_args: Vec::new(),
        spec: "profile".into(),
        control: "profile".into(),
        target: "epic".into(),
        sr: true,
        lftr: true,
        store_sinking: false,
        explain_spec: false,
        alias_profile: None,
        save_alias_profile: None,
        emit: "ir".into(),
        out: None,
        run: false,
        sim: false,
        fault_policies: Vec::new(),
        stats: false,
        jobs: 0,
        time_passes: false,
        dump_after: PassSet::EMPTY,
        stop_after: None,
        inject_spec_fail: None,
        inject_fallback_fail: None,
        inject_corrupt: None,
        verify_each: false,
        audit_spec: false,
        audit_leaks: false,
        fence_leaks: false,
        taint_secret: Vec::new(),
        reduce: false,
        fuel: 100_000_000,
        cache_dir: None,
        cache_fault_policy: None,
        cache_retries: specframe::core::cache::DEFAULT_RETRY_BUDGET,
        deadline_ms: None,
        serve: false,
        serve_queue: None,
        verbose: false,
    };
    let mut train_set = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--entry" => cli.entry = args.next().ok_or("--entry needs a value")?,
            "--args" => cli.args = parse_values(&args.next().ok_or("--args needs a value")?)?,
            "--train-args" => {
                cli.train_args = parse_values(&args.next().ok_or("--train-args needs a value")?)?;
                train_set = true;
            }
            "--mega" => {
                let v = args.next().ok_or("--mega needs SEED[:FUNCS]")?;
                let (seed, funcs) = match v.split_once(':') {
                    Some((s, f)) => (
                        s.parse().map_err(|e| format!("bad --mega seed: {e}"))?,
                        f.parse().map_err(|e| format!("bad --mega funcs: {e}"))?,
                    ),
                    None => (
                        v.parse().map_err(|e| format!("bad --mega seed: {e}"))?,
                        1000,
                    ),
                };
                cli.mega = Some((seed, funcs));
            }
            "--spec" => cli.spec = args.next().ok_or("--spec needs a value")?,
            "--control" => cli.control = args.next().ok_or("--control needs a value")?,
            "--target" => cli.target = args.next().ok_or("--target needs a value")?,
            other if other.starts_with("--target=") => {
                cli.target = other["--target=".len()..].to_string()
            }
            "--no-sr" => cli.sr = false,
            "--no-lftr" => cli.lftr = false,
            "--store-sinking" => cli.store_sinking = true,
            "--explain-spec" => cli.explain_spec = true,
            "--alias-profile" => {
                cli.alias_profile = Some(args.next().ok_or("--alias-profile needs a value")?)
            }
            "--save-alias-profile" => {
                cli.save_alias_profile =
                    Some(args.next().ok_or("--save-alias-profile needs a value")?)
            }
            "--emit" => cli.emit = args.next().ok_or("--emit needs a value")?,
            "-o" => cli.out = Some(args.next().ok_or("-o needs a value")?),
            "--run" => cli.run = true,
            "--sim" => cli.sim = true,
            "--fault-policy" => cli
                .fault_policies
                .push(args.next().ok_or("--fault-policy needs a value")?),
            other if other.starts_with("--fault-policy=") => cli
                .fault_policies
                .push(other["--fault-policy=".len()..].to_string()),
            "--stats" => cli.stats = true,
            "--jobs" => {
                cli.jobs = args
                    .next()
                    .ok_or("--jobs needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --jobs: {e}"))?
            }
            "--time-passes" => cli.time_passes = true,
            "--dump-after" => {
                cli.dump_after =
                    PassSet::parse_list(&args.next().ok_or("--dump-after needs a value")?)?
            }
            other if other.starts_with("--dump-after=") => {
                cli.dump_after = PassSet::parse_list(&other["--dump-after=".len()..])?
            }
            "--stop-after" => {
                cli.stop_after = Some(args.next().ok_or("--stop-after needs a value")?.parse()?)
            }
            other if other.starts_with("--stop-after=") => {
                cli.stop_after = Some(other["--stop-after=".len()..].parse()?)
            }
            "--inject-spec-fail" => {
                cli.inject_spec_fail = Some(args.next().ok_or("--inject-spec-fail needs a value")?)
            }
            "--inject-fallback-fail" => {
                cli.inject_fallback_fail =
                    Some(args.next().ok_or("--inject-fallback-fail needs a value")?)
            }
            "--inject-corrupt" => {
                cli.inject_corrupt = Some(PipelineHooks::parse_inject_corrupt(
                    &args.next().ok_or("--inject-corrupt needs a value")?,
                )?)
            }
            "--verify-each" => cli.verify_each = true,
            "--audit-spec" => cli.audit_spec = true,
            "--audit-leaks" => cli.audit_leaks = true,
            "--fence-leaks" => cli.fence_leaks = true,
            "--taint-secret" => push_taint_secrets(
                &mut cli.taint_secret,
                &args.next().ok_or("--taint-secret needs a value")?,
            ),
            other if other.starts_with("--taint-secret=") => {
                push_taint_secrets(&mut cli.taint_secret, &other["--taint-secret=".len()..])
            }
            "--reduce" => cli.reduce = true,
            "--cache-dir" => {
                cli.cache_dir = Some(args.next().ok_or("--cache-dir needs a value")?.into())
            }
            "--cache-fault-policy" => {
                let spec = args.next().ok_or("--cache-fault-policy needs a value")?;
                // validate eagerly so a typo fails before any work starts
                specframe::core::parse_store_fault_policy(&spec)?;
                cli.cache_fault_policy = Some(spec);
            }
            "--cache-retries" => {
                cli.cache_retries = args
                    .next()
                    .ok_or("--cache-retries needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --cache-retries: {e}"))?
            }
            "--deadline-ms" => {
                cli.deadline_ms = Some(
                    args.next()
                        .ok_or("--deadline-ms needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --deadline-ms: {e}"))?,
                )
            }
            "--serve" => cli.serve = true,
            "--serve-queue" => {
                cli.serve_queue = Some(args.next().ok_or("--serve-queue needs a value")?.into())
            }
            "--verbose" => cli.verbose = true,
            "--fuel" => {
                cli.fuel = args
                    .next()
                    .ok_or("--fuel needs a value")?
                    .parse()
                    .map_err(|e| format!("bad fuel: {e}"))?
            }
            "--help" | "-h" => {
                return Err("usage: specc INPUT.ir [--entry NAME] [--args N,..] \
                            [--spec none|profile|heuristic|aggressive] \
                            [--control off|profile|static] [--target epic|swr] \
                            [--no-sr] [--no-lftr] \
                            [--store-sinking] [--explain-spec] [--alias-profile FILE] \
                            [--save-alias-profile FILE] [--emit ir|hssa|mach] [-o FILE] \
                            [--run] [--sim] [--fault-policy SPEC].. [--stats] \
                            [--jobs N] [--time-passes]\n\
                            [--dump-after refine|hssa|ssapre|strength|lftr|storeprom|lower[,..]]\n\
                            [--stop-after PASS] [--verify-each] [--audit-spec] \
                            [--audit-leaks] [--fence-leaks] \
                            [--taint-secret LOC,..] [--reduce] \
                            [--inject-spec-fail FUNC] [--inject-fallback-fail FUNC] \
                            [--inject-corrupt FUNC:PASS] [--cache-dir DIR] \
                            [--cache-fault-policy SPEC] [--cache-retries N] \
                            [--deadline-ms N] \
                            [--serve] [--serve-queue DIR] [--verbose]\n\
                            cache maintenance: specc cache stats|clear|verify \
                            --cache-dir DIR\n\
                            --fault-policy: default | geom:E:W | always-miss | \
                            forced-miss | random:SEED[:DENOM] | flash-clear[:PERIOD] | \
                            evict-at:N[:N...]\n\
                            --cache-fault-policy: enospc:N | \
                            eio-read:SEED[:DENOM] | torn-write:N | latency:MS\n\
                            --audit-leaks rejects (and --fence-leaks repairs) \
                            machine code where a speculative load's value \
                            reaches an address or branch before its check; \
                            --taint-secret LOC[,LOC..] (with --sim) marks \
                            `@global` words or bare word addresses secret and \
                            tracks misspeculated flow to those sinks\n\
                            --jobs 0 (the default) auto-detects: the \
                            SPECFRAME_JOBS environment variable if set to a \
                            positive integer, otherwise all available cores"
                    .into())
            }
            other if !other.starts_with('-') && cli.input.is_empty() => {
                cli.input = other.to_string()
            }
            // `specc cache stats|clear|verify`: the action is the second
            // positional
            other if !other.starts_with('-') && cli.input == "cache" && cli.cache_cmd.is_none() => {
                cli.cache_cmd = Some(other.to_string())
            }
            other => return Err(format!("unknown option `{other}` (try --help)")),
        }
    }
    // the flag wins over the environment
    if cli.cache_dir.is_none() {
        if let Ok(dir) = std::env::var("SPECFRAME_CACHE_DIR") {
            if !dir.is_empty() {
                cli.cache_dir = Some(dir.into());
            }
        }
    }
    if cli.input == "cache" {
        match cli.cache_cmd.as_deref() {
            Some("stats" | "clear" | "verify") => {}
            Some(other) => {
                return Err(format!(
                    "unknown cache action `{other}` (stats, clear or verify)"
                ))
            }
            None => return Err("`specc cache` needs an action: stats, clear or verify".into()),
        }
        if cli.cache_dir.is_none() {
            return Err("`specc cache` needs --cache-dir DIR (or SPECFRAME_CACHE_DIR)".into());
        }
        return Ok(cli);
    }
    if cli.serve && cli.serve_queue.is_some() {
        return Err("--serve and --serve-queue are mutually exclusive".into());
    }
    if cli.serve || cli.serve_queue.is_some() {
        if !cli.input.is_empty() || cli.mega.is_some() {
            return Err("serve mode reads requests; drop the input file / --mega".into());
        }
        if cli.run || cli.sim || cli.reduce {
            return Err("serve mode is compile-only (no --run/--sim/--reduce)".into());
        }
        return Ok(cli);
    }
    if cli.mega.is_some() {
        if !cli.input.is_empty() {
            return Err("--mega generates the input; drop the input file".into());
        }
        if cli.run || cli.sim || cli.reduce {
            return Err("--mega is compile-only (no --run/--sim/--reduce)".into());
        }
        // The synthetic module has no entry to train on; profile-guided
        // speculation needs a real program. Degrade both defaults.
        if cli.spec == "profile" {
            cli.spec = "heuristic".into();
        }
        if cli.control == "profile" {
            cli.control = "static".into();
        }
    } else if cli.input.is_empty() {
        return Err("no input file (try --help)".into());
    }
    if !train_set {
        cli.train_args = cli.args.clone();
    }
    if cli.fault_policies.is_empty() {
        cli.fault_policies.push("default".into());
    } else if !cli.sim {
        return Err("--fault-policy requires --sim".into());
    }
    if !cli.taint_secret.is_empty() && !cli.sim {
        return Err("--taint-secret requires --sim".into());
    }
    Ok(cli)
}

fn usage(msg: String) -> CompileFailure {
    CompileFailure::Usage(msg)
}

fn real_main() -> Result<(), CompileFailure> {
    let cli = parse_cli().map_err(usage)?;
    if cli.cache_cmd.is_some() {
        return run_cache_cmd(&cli);
    }
    if cli.serve || cli.serve_queue.is_some() {
        return run_serve(&cli);
    }
    // validate policy specs and the target name before doing any work
    for p in &cli.fault_policies {
        specframe::machine::parse_fault_policy(p).map_err(usage)?;
    }
    let target = specframe::machine::TargetId::parse(&cli.target)
        .ok_or_else(|| usage(format!("unknown --target `{}` (epic|swr)", cli.target)))?;
    let mut m = match cli.mega {
        Some((seed, funcs)) => specframe::workloads::mega_module(seed, funcs),
        None => {
            let src = std::fs::read_to_string(&cli.input)
                .map_err(|e| usage(format!("cannot read {}: {e}", cli.input)))?;
            let m = parse_module(&src)
                .map_err(|e| CompileFailure::Parse(format!("{}: {e}", cli.input)))?;
            verify_module(&m).map_err(|e| CompileFailure::Parse(format!("{}: {e}", cli.input)))?;
            m
        }
    };
    prepare_module(&mut m);
    // Input-side shape for the --time-passes throughput line (the
    // optimized module's instruction count would move with the optimizer).
    let input_shape = (m.funcs.len(), specframe::workloads::inst_count(&m));

    // The mega-module is a compiler-throughput workload: it has no entry
    // point to interpret, so skip the reference run (`--run`/`--sim` are
    // rejected at parse time).
    let expect = if cli.mega.is_some() {
        None
    } else {
        if m.func_by_name(&cli.entry).is_none() {
            return Err(usage(format!(
                "no function `{}` in {}",
                cli.entry, cli.input
            )));
        }
        let (expect, _) = run(&m, &cli.entry, &cli.args, cli.fuel).map_err(|e| {
            CompileFailure::Compile(specframe::core::CompileError {
                function: String::new(),
                pass: "reference-run".into(),
                message: format!("reference run failed: {e}"),
                fallback_exhausted: false,
            })
        })?;
        expect
    };

    if cli.emit == "hssa" {
        let mut aprof = None;
        if cli.spec == "profile" {
            let mut ap = AliasProfiler::new();
            run_with(&m, &cli.entry, &cli.train_args, cli.fuel, &mut ap).map_err(|e| {
                CompileFailure::Compile(specframe::core::CompileError {
                    function: String::new(),
                    pass: "profile".into(),
                    message: format!("profiling run failed: {e}"),
                    fallback_exhausted: false,
                })
            })?;
            aprof = Some(ap.finish());
        }
        let aa = AliasAnalysis::analyze(&m);
        let mut out = String::new();
        for fi in 0..m.funcs.len() {
            let fid = specframe::ir::FuncId::from_index(fi);
            let mode = match (cli.spec.as_str(), &aprof) {
                ("profile", Some(p)) => SpecMode::Profile(p),
                ("heuristic", _) => SpecMode::Heuristic,
                ("aggressive", _) => SpecMode::Aggressive,
                _ => SpecMode::NoSpeculation,
            };
            let hf = build_hssa(&m, fid, &aa, mode);
            out.push_str(&print_hssa(&m, &hf));
            out.push('\n');
        }
        emit(&cli, &out).map_err(usage)?;
        return Ok(());
    }

    let alias_profile = match &cli.alias_profile {
        Some(path) => Some(
            std::fs::read_to_string(path).map_err(|e| usage(format!("cannot read {path}: {e}")))?,
        ),
        None => None,
    };
    let req = CompileRequest {
        entry: cli.entry.clone(),
        args: cli.args.clone(),
        train_args: Some(cli.train_args.clone()),
        spec: cli.spec.clone(),
        control: cli.control.clone(),
        target: cli.target.clone(),
        strength_reduction: cli.sr,
        lftr: cli.lftr,
        store_sinking: cli.store_sinking,
        explain_spec: cli.explain_spec,
        jobs: cli.jobs,
        hooks: PipelineHooks {
            dump_after: cli.dump_after,
            stop_after: cli.stop_after,
            inject_spec_fail: cli.inject_spec_fail.clone(),
            inject_fallback_fail: cli.inject_fallback_fail.clone(),
            verify_each: cli.verify_each,
            audit_spec: cli.audit_spec,
            inject_corrupt: cli.inject_corrupt.clone(),
            audit_leaks: cli.audit_leaks,
            fence_leaks: cli.fence_leaks,
            cancel: Default::default(),
        },
        fuel: cli.fuel,
        alias_profile,
        cache_dir: cli.cache_dir.clone(),
        cache_fault_policy: cli.cache_fault_policy.clone(),
        cache_retries: cli.cache_retries,
        cache_health: Default::default(),
        deadline_ms: cli.deadline_ms,
    };
    // keep the input around so a failure can be shrunk to a minimal repro
    // (and so an --audit-leaks rejection can be adversarially witnessed)
    let input_for_reduce = cli.reduce.then(|| m.clone());
    let input_for_witness =
        ((cli.audit_leaks || cli.fence_leaks) && cli.mega.is_none()).then(|| m.clone());
    let out = match compile_module(m, &req) {
        Ok(out) => out,
        Err(e @ CompileFailure::Compile(_)) if cli.reduce => {
            return reduce_and_report(&cli, input_for_reduce.as_ref().unwrap(), &req, &e, false);
        }
        Err(e) => {
            // close the loop adversarially: re-derive the input lowering's
            // leak sites and drive each into actual misspeculation with a
            // seeded eviction schedule, so the static report is backed by
            // (or refuted against) a concrete simulator run — the printed
            // policy string replays with `--sim --fault-policy`
            if let (CompileFailure::Compile(ce), Some(orig)) = (&e, &input_for_witness) {
                if ce.pass == "audit-leaks" {
                    let text = specframe::pipeline::witness_leaks_text(
                        orig, target, &cli.entry, &cli.args, cli.fuel,
                    );
                    for line in text.lines() {
                        eprintln!("specc: {line}");
                    }
                }
            }
            return Err(e);
        }
    };
    for w in &out.report.warnings {
        eprintln!("specc: warning: {w}");
    }
    if let Some(table) = &out.explain {
        print!("{table}");
    }
    let m = out.module;
    let report = &out.report;
    // every fenced site is also witnessed against the *unfenced* lowering
    // of the optimized module (the emitted IR carries no fences — they are
    // re-applied at machine level), proving each repaired leak was real
    if cli.fence_leaks && report.stats.leak_sites_flagged > 0 && cli.mega.is_none() {
        let text =
            specframe::pipeline::witness_leaks_text(&m, target, &cli.entry, &cli.args, cli.fuel);
        for line in text.lines() {
            eprintln!("specc: {line}");
        }
    }
    if cli.stats {
        eprintln!("optimizer: {:?}", report.stats);
    }
    if cli.cache_dir.is_some() && (cli.stats || cli.time_passes) {
        let c = report.cache;
        eprintln!(
            "cache: {} hits, {} misses, {} stale, {} evicts, {} retries, {} io errors, {} breaker trips",
            c.hits, c.misses, c.stale, c.evicts, c.retries, c.io_errors, c.breaker_trips
        );
    }
    if cli.time_passes {
        eprint!("{}", report.timings.report());
        let secs = report.timings.total.as_secs_f64();
        if secs > 0.0 {
            let (funcs, insts) = input_shape;
            eprintln!(
                "  throughput     {:.0} funcs/sec, {:.0} insts/sec ({funcs} funcs, {insts} insts)",
                funcs as f64 / secs,
                insts as f64 / secs
            );
        }
    }
    if let Some(path) = &cli.save_alias_profile {
        let prof = out.alias_profile.as_ref().ok_or_else(|| {
            usage("--save-alias-profile needs --spec profile (no profile was collected)".into())
        })?;
        let text = specframe::profile::write_alias_profile(prof);
        std::fs::write(path, text).map_err(|e| usage(format!("cannot write {path}: {e}")))?;
    }
    if !cli.dump_after.is_empty() {
        // dump mode: the per-pass snapshots are the product
        emit(&cli, &specframe::core::render_dumps(&out.dumps)).map_err(usage)?;
        return Ok(());
    }
    if cli.emit == "mach" {
        // machine-code mode: the rendered lowering for the active target
        // is the product (the same lowering --sim executes)
        let prog = specframe::codegen::lower_module_for(&m, target.spec());
        emit(&cli, &specframe::machine::render_mprogram(&prog)).map_err(usage)?;
        return Ok(());
    }

    let miscompile = |what: &str, got: Option<Value>| {
        CompileFailure::Compile(specframe::core::CompileError {
            function: String::new(),
            pass: what.to_string(),
            message: format!("MISCOMPILE: {what} result {got:?} != reference {expect:?}"),
            fallback_exhausted: false,
        })
    };
    if cli.run {
        let (got, rs) = run(&m, &cli.entry, &cli.args, cli.fuel).map_err(|e| {
            CompileFailure::Compile(specframe::core::CompileError {
                function: String::new(),
                pass: "run".into(),
                message: format!("optimized run failed: {e}"),
                fallback_exhausted: false,
            })
        })?;
        if got != expect {
            let fail = miscompile("run", got);
            if cli.reduce {
                return reduce_and_report(
                    &cli,
                    input_for_reduce.as_ref().unwrap(),
                    &req,
                    &fail,
                    true,
                );
            }
            return Err(fail);
        }
        eprintln!(
            "result = {:?}  (loads {} checks {} stores {})",
            got, rs.loads, rs.check_loads, rs.stores
        );
    }
    if cli.sim {
        let sim_opts = specframe::pipeline::SimOptions {
            taint_secret: cli.taint_secret.clone(),
            fence_leaks: cli.fence_leaks,
            target,
        };
        for policy in &cli.fault_policies {
            let (got, text) = specframe::pipeline::simulate_text_with(
                &m, &cli.entry, &cli.args, cli.fuel, policy, &sim_opts,
            )?;
            if got != expect {
                let fail = miscompile("sim", got);
                if cli.reduce {
                    return reduce_and_report(
                        &cli,
                        input_for_reduce.as_ref().unwrap(),
                        &req,
                        &fail,
                        true,
                    );
                }
                return Err(fail);
            }
            eprint!("{text}");
        }
    }

    if cli.reduce {
        eprintln!("specc: --reduce: nothing to reduce (no failure reproduced)");
    }
    if !cli.run && !cli.sim || cli.out.is_some() {
        emit(&cli, &specframe::ir::display::print_module(&m)).map_err(usage)?;
    }
    Ok(())
}

/// `specc cache stats|clear|verify`: cache maintenance over the directory
/// named by `--cache-dir` / `SPECFRAME_CACHE_DIR`. `verify` exits 2 when
/// any entry fails to decode — same family as input verification errors.
fn run_cache_cmd(cli: &Cli) -> Result<(), CompileFailure> {
    let dir = cli.cache_dir.as_ref().unwrap();
    let cache = specframe::core::FuncCache::open(dir);
    let io_err = |e: std::io::Error| usage(format!("cache dir {}: {e}", dir.display()));
    match cli.cache_cmd.as_deref().unwrap() {
        "stats" => {
            let (entries, bytes) = cache.entry_stats().map_err(io_err)?;
            println!("cache {}: {entries} entries, {bytes} bytes", dir.display());
        }
        "clear" => {
            let removed = cache.clear().map_err(io_err)?;
            println!("cache {}: removed {removed} entries", dir.display());
        }
        _ => {
            let report = cache.verify().map_err(io_err)?;
            for (key, why) in &report.bad {
                println!("bad  {} {why}", key.hex());
            }
            for tmp in &report.tmps {
                println!("tmp  {}", tmp.display());
            }
            println!(
                "cache {}: {} ok, {} bad, {} bytes",
                dir.display(),
                report.ok,
                report.bad.len(),
                report.bytes
            );
            if !report.tmps.is_empty() {
                let swept = cache.sweep_stale_tmps().map_err(io_err)?;
                println!(
                    "cache {}: {} tmp files, {swept} stale swept",
                    dir.display(),
                    report.tmps.len()
                );
            }
            if !report.bad.is_empty() {
                return Err(CompileFailure::Parse(format!(
                    "cache verify: {} undecodable entries",
                    report.bad.len()
                )));
            }
        }
    }
    Ok(())
}

/// `--serve` / `--serve-queue`: run the compile service with this
/// invocation's flags as the base request for every served compile.
fn run_serve(cli: &Cli) -> Result<(), CompileFailure> {
    let alias_profile = match &cli.alias_profile {
        Some(path) => Some(
            std::fs::read_to_string(path).map_err(|e| usage(format!("cannot read {path}: {e}")))?,
        ),
        None => None,
    };
    // the profile-guided defaults need a training run, which needs entry
    // arguments; a service session started without --args/--train-args
    // cannot provide them per request, so degrade to the self-contained
    // modes (exactly like `--mega` does) instead of failing every compile
    let mut spec = cli.spec.clone();
    let mut control = cli.control.clone();
    if cli.args.is_empty() && cli.train_args.is_empty() {
        if spec == "profile" {
            spec = "heuristic".into();
        }
        if control == "profile" {
            control = "static".into();
        }
    }
    let cfg = ServeConfig {
        base: CompileRequest {
            entry: cli.entry.clone(),
            args: cli.args.clone(),
            train_args: Some(cli.train_args.clone()),
            spec,
            control,
            target: cli.target.clone(),
            strength_reduction: cli.sr,
            lftr: cli.lftr,
            store_sinking: cli.store_sinking,
            explain_spec: false,
            jobs: cli.jobs,
            hooks: PipelineHooks {
                dump_after: cli.dump_after,
                stop_after: cli.stop_after,
                inject_spec_fail: cli.inject_spec_fail.clone(),
                inject_fallback_fail: cli.inject_fallback_fail.clone(),
                verify_each: cli.verify_each,
                audit_spec: cli.audit_spec,
                inject_corrupt: cli.inject_corrupt.clone(),
                audit_leaks: cli.audit_leaks,
                fence_leaks: cli.fence_leaks,
                cancel: Default::default(),
            },
            fuel: cli.fuel,
            alias_profile,
            cache_dir: cli.cache_dir.clone(),
            cache_fault_policy: cli.cache_fault_policy.clone(),
            cache_retries: cli.cache_retries,
            // one health cell for the whole session: every served request
            // clones the base, sharing the circuit breaker
            cache_health: Default::default(),
            deadline_ms: cli.deadline_ms,
        },
        verbose: cli.verbose,
    };
    match &cli.serve_queue {
        Some(dir) => {
            let rep = serve_queue(&cfg, dir)
                .map_err(|e| usage(format!("serve queue {}: {e}", dir.display())))?;
            eprintln!(
                "specc: served {} requests ({} skipped, {} quarantined, {} tmp swept)",
                rep.handled, rep.skipped, rep.quarantined, rep.swept
            );
        }
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let served = serve_stdin(&cfg, &mut stdin.lock(), &mut stdout.lock())
                .map_err(|e| usage(format!("serve: {e}")))?;
            eprintln!("specc: served {served} requests");
        }
    }
    Ok(())
}

/// The `--reduce` tail: shrink the failing input to a minimal module that
/// fails the same way, and emit it (stdout or `-o`) under a `; reduce:`
/// stats header. The repro is the product, so the process exits 0.
fn reduce_and_report(
    cli: &Cli,
    input: &specframe::ir::Module,
    req: &specframe::pipeline::CompileRequest,
    failure: &CompileFailure,
    run_check: bool,
) -> Result<(), CompileFailure> {
    eprintln!("specc: {failure}");
    eprintln!("specc: --reduce: shrinking the failing input...");
    let rc = run_check.then_some((cli.entry.as_str(), cli.args.as_slice(), cli.fuel));
    let (red, stats) = specframe::pipeline::reduce_failure(input, req, failure, rc);
    let mut text = format!(
        "; reduce: {} probes, {} -> {} instructions\n",
        stats.probes, stats.initial_insts, stats.final_insts
    );
    text.push_str(&specframe::ir::display::print_module(&red));
    emit(cli, &text).map_err(usage)
}

fn emit(cli: &Cli, text: &str) -> Result<(), String> {
    match &cli.out {
        Some(path) => std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}")),
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

fn main() -> ExitCode {
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("specc: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
