//! `specc` — the specframe compiler driver.
//!
//! ```text
//! specc INPUT.ir [options]
//!
//!   --entry NAME          entry function (default: main)
//!   --args N,N,...        arguments for --run / --sim / profiling
//!   --train-args N,N,...  profiling-run arguments (default: --args)
//!   --spec MODE           data speculation: none|profile|heuristic|aggressive
//!                         (default: profile)
//!   --control MODE        control speculation: off|profile|static
//!                         (default: profile)
//!   --no-sr               disable strength reduction / LFTR
//!   --store-sinking       enable store promotion
//!   --emit WHAT           ir (optimized IR, default) | hssa (speculative
//!                         SSA dump of every function before optimization)
//!   -o FILE               write the optimized IR to FILE (default: stdout)
//!   --run                 interpret the optimized program and print result
//!   --sim                 run it on the EPIC simulator and print counters
//!   --stats               print optimizer statistics
//!   --jobs N              worker threads for the per-function pipeline
//!                         (0 = auto: $SPECFRAME_JOBS, else all cores)
//!   --time-passes         print per-pass wall times to stderr
//!   --dump-after PASSES   print the textual form of every function after
//!                         each named stage and exit (comma-separated from:
//!                         refine, hssa, ssapre, strength, storeprom, lower);
//!                         byte-deterministic at any --jobs level
//!   --stop-after PASS     run the pipeline only through the named stage
//! ```
//!
//! Example:
//!
//! ```text
//! specc kernel.ir --args 0,100 --spec profile --control static --sim
//! ```

use specframe::prelude::*;
use std::process::ExitCode;

struct Cli {
    input: String,
    entry: String,
    args: Vec<Value>,
    train_args: Vec<Value>,
    spec: String,
    control: String,
    sr: bool,
    store_sinking: bool,
    emit: String,
    out: Option<String>,
    run: bool,
    sim: bool,
    stats: bool,
    jobs: usize,
    time_passes: bool,
    dump_after: PassSet,
    stop_after: Option<Pass>,
    fuel: u64,
}

fn parse_values(s: &str) -> Result<Vec<Value>, String> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|t| {
            let t = t.trim();
            if t.contains('.') {
                t.parse::<f64>()
                    .map(Value::F)
                    .map_err(|e| format!("bad float `{t}`: {e}"))
            } else {
                t.parse::<i64>()
                    .map(Value::I)
                    .map_err(|e| format!("bad int `{t}`: {e}"))
            }
        })
        .collect()
}

fn parse_cli() -> Result<Cli, String> {
    let mut args = std::env::args().skip(1);
    let mut cli = Cli {
        input: String::new(),
        entry: "main".into(),
        args: Vec::new(),
        train_args: Vec::new(),
        spec: "profile".into(),
        control: "profile".into(),
        sr: true,
        store_sinking: false,
        emit: "ir".into(),
        out: None,
        run: false,
        sim: false,
        stats: false,
        jobs: 0,
        time_passes: false,
        dump_after: PassSet::EMPTY,
        stop_after: None,
        fuel: 100_000_000,
    };
    let mut train_set = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--entry" => cli.entry = args.next().ok_or("--entry needs a value")?,
            "--args" => cli.args = parse_values(&args.next().ok_or("--args needs a value")?)?,
            "--train-args" => {
                cli.train_args = parse_values(&args.next().ok_or("--train-args needs a value")?)?;
                train_set = true;
            }
            "--spec" => cli.spec = args.next().ok_or("--spec needs a value")?,
            "--control" => cli.control = args.next().ok_or("--control needs a value")?,
            "--no-sr" => cli.sr = false,
            "--store-sinking" => cli.store_sinking = true,
            "--emit" => cli.emit = args.next().ok_or("--emit needs a value")?,
            "-o" => cli.out = Some(args.next().ok_or("-o needs a value")?),
            "--run" => cli.run = true,
            "--sim" => cli.sim = true,
            "--stats" => cli.stats = true,
            "--jobs" => {
                cli.jobs = args
                    .next()
                    .ok_or("--jobs needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --jobs: {e}"))?
            }
            "--time-passes" => cli.time_passes = true,
            "--dump-after" => {
                cli.dump_after =
                    PassSet::parse_list(&args.next().ok_or("--dump-after needs a value")?)?
            }
            other if other.starts_with("--dump-after=") => {
                cli.dump_after = PassSet::parse_list(&other["--dump-after=".len()..])?
            }
            "--stop-after" => {
                cli.stop_after = Some(args.next().ok_or("--stop-after needs a value")?.parse()?)
            }
            other if other.starts_with("--stop-after=") => {
                cli.stop_after = Some(other["--stop-after=".len()..].parse()?)
            }
            "--fuel" => {
                cli.fuel = args
                    .next()
                    .ok_or("--fuel needs a value")?
                    .parse()
                    .map_err(|e| format!("bad fuel: {e}"))?
            }
            "--help" | "-h" => {
                return Err("usage: specc INPUT.ir [--entry NAME] [--args N,..] \
                            [--spec none|profile|heuristic|aggressive] \
                            [--control off|profile|static] [--no-sr] \
                            [--store-sinking] [--emit ir|hssa] [-o FILE] \
                            [--run] [--sim] [--stats] [--jobs N] [--time-passes]\n\
                            [--dump-after refine|hssa|ssapre|strength|storeprom|lower[,..]]\n\
                            [--stop-after PASS]\n\
                            --jobs 0 (the default) auto-detects: the \
                            SPECFRAME_JOBS environment variable if set to a \
                            positive integer, otherwise all available cores"
                    .into())
            }
            other if !other.starts_with('-') && cli.input.is_empty() => {
                cli.input = other.to_string()
            }
            other => return Err(format!("unknown option `{other}` (try --help)")),
        }
    }
    if cli.input.is_empty() {
        return Err("no input file (try --help)".into());
    }
    if !train_set {
        cli.train_args = cli.args.clone();
    }
    Ok(cli)
}

fn real_main() -> Result<(), String> {
    let cli = parse_cli()?;
    let src = std::fs::read_to_string(&cli.input)
        .map_err(|e| format!("cannot read {}: {e}", cli.input))?;
    let mut m = parse_module(&src).map_err(|e| format!("{}: {e}", cli.input))?;
    verify_module(&m).map_err(|e| format!("{}: {e}", cli.input))?;
    prepare_module(&mut m);

    if m.func_by_name(&cli.entry).is_none() {
        return Err(format!("no function `{}` in {}", cli.entry, cli.input));
    }
    let (expect, _) = run(&m, &cli.entry, &cli.args, cli.fuel)
        .map_err(|e| format!("reference run failed: {e}"))?;

    if cli.emit == "hssa" {
        let mut aprof = None;
        if cli.spec == "profile" {
            let mut ap = AliasProfiler::new();
            run_with(&m, &cli.entry, &cli.train_args, cli.fuel, &mut ap)
                .map_err(|e| format!("profiling run failed: {e}"))?;
            aprof = Some(ap.finish());
        }
        let aa = AliasAnalysis::analyze(&m);
        let mut out = String::new();
        for fi in 0..m.funcs.len() {
            let fid = specframe::ir::FuncId::from_index(fi);
            let mode = match (cli.spec.as_str(), &aprof) {
                ("profile", Some(p)) => SpecMode::Profile(p),
                ("heuristic", _) => SpecMode::Heuristic,
                ("aggressive", _) => SpecMode::Aggressive,
                _ => SpecMode::NoSpeculation,
            };
            let hf = build_hssa(&m, fid, &aa, mode);
            out.push_str(&print_hssa(&m, &hf));
            out.push('\n');
        }
        emit(&cli, &out)?;
        return Ok(());
    }

    let req = CompileRequest {
        entry: cli.entry.clone(),
        args: cli.args.clone(),
        train_args: Some(cli.train_args.clone()),
        spec: cli.spec.clone(),
        control: cli.control.clone(),
        strength_reduction: cli.sr,
        store_sinking: cli.store_sinking,
        jobs: cli.jobs,
        hooks: PipelineHooks {
            dump_after: cli.dump_after,
            stop_after: cli.stop_after,
        },
        fuel: cli.fuel,
    };
    let out = compile_module(m, &req)?;
    let m = out.module;
    let report = out.report;
    if cli.stats {
        eprintln!("optimizer: {:?}", report.stats);
    }
    if cli.time_passes {
        eprint!("{}", report.timings.report());
    }
    if !cli.dump_after.is_empty() {
        // dump mode: the per-pass snapshots are the product
        emit(&cli, &specframe::core::render_dumps(&out.dumps))?;
        return Ok(());
    }

    if cli.run {
        let (got, rs) = run(&m, &cli.entry, &cli.args, cli.fuel)
            .map_err(|e| format!("optimized run failed: {e}"))?;
        if got != expect {
            return Err(format!(
                "MISCOMPILE: optimized result {got:?} != reference {expect:?}"
            ));
        }
        eprintln!(
            "result = {:?}  (loads {} checks {} stores {})",
            got, rs.loads, rs.check_loads, rs.stores
        );
    }
    if cli.sim {
        let prog = lower_module(&m);
        let (got, c) = run_machine(&prog, &cli.entry, &cli.args, cli.fuel)
            .map_err(|e| format!("simulation failed: {e}"))?;
        if got != expect {
            return Err(format!(
                "MISCOMPILE (machine): {got:?} != reference {expect:?}"
            ));
        }
        eprintln!("result               = {got:?}");
        eprintln!("cycles               = {}", c.cycles);
        eprintln!("loads retired        = {}", c.loads_retired);
        eprintln!("check loads          = {}", c.check_loads);
        eprintln!("failed checks        = {}", c.failed_checks);
        eprintln!("check ratio          = {:.2}%", c.check_ratio() * 100.0);
        eprintln!(
            "mis-speculation      = {:.2}%",
            c.mis_speculation_ratio() * 100.0
        );
    }

    if !cli.run && !cli.sim || cli.out.is_some() {
        emit(&cli, &specframe::ir::display::print_module(&m))?;
    }
    Ok(())
}

fn emit(cli: &Cli, text: &str) -> Result<(), String> {
    match &cli.out {
        Some(path) => std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}")),
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

fn main() -> ExitCode {
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("specc: {e}");
            ExitCode::FAILURE
        }
    }
}
