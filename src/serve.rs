//! The `specc --serve` compile service.
//!
//! A long-lived `specc` that accepts a stream of module compile requests
//! and answers with per-function status, backed by the persistent
//! per-function cache — so a fleet recompiling mostly-unchanged modules
//! pays only for the diff. Two transports share one request grammar:
//!
//! * **stdin** (`--serve`): one request per line on stdin, one response
//!   block per request on stdout, until `quit`/EOF;
//! * **queue directory** (`--serve-queue DIR`): every `*.req` file in
//!   `DIR` (sorted by name) is drained — the first non-empty line is the
//!   request, the response block is written to `<stem>.resp` via temp
//!   file + rename, and the `.req` is removed. One drain pass, then exit:
//!   deterministic for scripting; a fleet loops it.
//!
//! Request grammar (tokens are whitespace-separated; blank lines and
//! `#` comments are skipped):
//!
//! ```text
//! compile PATH [-o OUT]     # compile the module file at PATH
//! mega SEED[:FUNCS] [-o OUT]# compile the synthetic mega-module
//! stats                     # report cache entry count and bytes
//! quit                      # stop serving (stdin transport)
//! ```
//!
//! Responses are single-line, machine-parseable:
//!
//! ```text
//! ok in=<request> funcs=N hits=H misses=M stale=S evicts=E fallbacks=F wall_ms=T
//! err in=<request> code=C msg=<message, newlines folded>
//! ```
//!
//! With `--verbose`, `fn <name> <hit|miss|stale|compiled>` lines precede
//! the `ok` line (one per function, module order). The optimized module
//! text is written to OUT when `-o` is given and is never printed to the
//! response stream — the protocol stays line-oriented.

use crate::pipeline::{compile_module, CompileFailure, CompileOutput, CompileRequest};
use specframe_core::FuncCache;
use specframe_ir::display::print_module;
use specframe_ir::parse_module;
use std::io::{self, BufRead, Write};
use std::path::Path;
use std::time::Instant;

/// Service configuration: the base compile request every module request
/// starts from (carrying `--spec`, `--jobs`, `--cache-dir`, …) plus the
/// transport options.
pub struct ServeConfig {
    /// Template request; per-request handling clones and adapts it.
    pub base: CompileRequest,
    /// Emit per-function `fn <name> <outcome>` status lines.
    pub verbose: bool,
}

/// What the caller should do after one request.
#[derive(Debug, PartialEq, Eq)]
pub enum ServeAction {
    /// Keep reading requests.
    Continue,
    /// Stop serving (`quit`).
    Quit,
}

/// Serves requests from `input` until `quit` or EOF. Returns how many
/// compile requests were handled.
pub fn serve_stdin(
    cfg: &ServeConfig,
    input: &mut dyn BufRead,
    out: &mut dyn Write,
) -> io::Result<usize> {
    let mut handled = 0;
    for line in input.lines() {
        let line = line?;
        let mut response = String::new();
        let action = handle_request(cfg, &line, &mut response);
        out.write_all(response.as_bytes())?;
        out.flush()?;
        if !response.is_empty() {
            handled += 1;
        }
        if action == ServeAction::Quit {
            break;
        }
    }
    Ok(handled)
}

/// Drains every `*.req` file in `dir` (sorted by file name), writing
/// `<stem>.resp` next to each and removing the request file. Returns how
/// many requests were drained.
pub fn serve_queue(cfg: &ServeConfig, dir: &Path) -> io::Result<usize> {
    let mut reqs: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("req"))
        .collect();
    reqs.sort();
    let mut handled = 0;
    for req_path in reqs {
        let text = std::fs::read_to_string(&req_path)?;
        let line = text
            .lines()
            .find(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
            .unwrap_or("");
        let mut response = String::new();
        // `quit` has no meaning for a one-pass drain; treat it as a no-op
        let _ = handle_request(cfg, line, &mut response);
        let resp_path = req_path.with_extension("resp");
        let tmp = req_path.with_extension("resp.tmp");
        std::fs::write(&tmp, response)?;
        std::fs::rename(&tmp, &resp_path)?;
        std::fs::remove_file(&req_path)?;
        handled += 1;
    }
    Ok(handled)
}

/// Handles one request line, appending the response block (possibly
/// empty, for blanks/comments) to `response`.
pub fn handle_request(cfg: &ServeConfig, line: &str, response: &mut String) -> ServeAction {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let Some(&cmd) = tokens.first() else {
        return ServeAction::Continue;
    };
    if cmd.starts_with('#') {
        return ServeAction::Continue;
    }
    match cmd {
        "quit" => ServeAction::Quit,
        "stats" => {
            match &cfg.base.cache_dir {
                None => response.push_str("ok in=stats cache=disabled\n"),
                Some(dir) => match FuncCache::open(dir).entry_stats() {
                    Ok((n, bytes)) => {
                        response.push_str(&format!("ok in=stats entries={n} bytes={bytes}\n"))
                    }
                    Err(e) => respond_err(response, "stats", 3, &e.to_string()),
                },
            }
            ServeAction::Continue
        }
        "compile" | "mega" => {
            handle_compile(cfg, cmd, &tokens, response);
            ServeAction::Continue
        }
        other => {
            respond_err(response, other, 1, &format!("unknown request `{other}`"));
            ServeAction::Continue
        }
    }
}

fn respond_err(response: &mut String, input: &str, code: u8, msg: &str) {
    let msg = msg.replace('\n', "; ");
    response.push_str(&format!("err in={input} code={code} msg={msg}\n"));
}

fn handle_compile(cfg: &ServeConfig, cmd: &str, tokens: &[&str], response: &mut String) {
    let Some(arg) = tokens.get(1) else {
        respond_err(response, cmd, 1, &format!("`{cmd}` needs an argument"));
        return;
    };
    let input_label = format!("{cmd}:{arg}");
    let mut out_path: Option<&str> = None;
    let mut rest = tokens[2..].iter();
    while let Some(&t) = rest.next() {
        match t {
            "-o" => match rest.next() {
                Some(&p) => out_path = Some(p),
                None => {
                    respond_err(response, &input_label, 1, "-o needs a path");
                    return;
                }
            },
            other => {
                respond_err(
                    response,
                    &input_label,
                    1,
                    &format!("unknown token `{other}`"),
                );
                return;
            }
        }
    }

    let t0 = Instant::now();
    let result = match cmd {
        "compile" => compile_file(cfg, arg),
        _ => compile_mega(cfg, arg),
    };
    match result {
        Err(e) => respond_err(response, &input_label, e.exit_code(), &e.to_string()),
        Ok(out) => {
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            if let Some(p) = out_path {
                if let Err(e) = std::fs::write(p, print_module(&out.module)) {
                    respond_err(response, &input_label, 3, &format!("writing {p}: {e}"));
                    return;
                }
            }
            if cfg.verbose {
                for (fi, f) in out.module.funcs.iter().enumerate() {
                    let outcome = out
                        .report
                        .cache_outcomes
                        .get(fi)
                        .map_or("compiled", |o| o.name());
                    response.push_str(&format!("fn {} {outcome}\n", f.name));
                }
            }
            let c = out.report.cache;
            response.push_str(&format!(
                "ok in={input_label} funcs={} hits={} misses={} stale={} evicts={} \
                 fallbacks={} wall_ms={wall_ms:.1}\n",
                out.module.funcs.len(),
                c.hits,
                c.misses,
                c.stale,
                c.evicts,
                out.report.stats.spec_fallbacks,
            ));
        }
    }
}

fn compile_file(cfg: &ServeConfig, path: &str) -> Result<CompileOutput, CompileFailure> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| CompileFailure::Usage(format!("reading {path}: {e}")))?;
    crate::pipeline::compile(&src, &cfg.base)
}

fn compile_mega(cfg: &ServeConfig, arg: &str) -> Result<CompileOutput, CompileFailure> {
    let (seed, funcs) = match arg.split_once(':') {
        Some((s, n)) => (s, Some(n)),
        None => (arg, None),
    };
    let seed: u64 = seed
        .parse()
        .map_err(|_| CompileFailure::Usage(format!("bad mega seed `{seed}`")))?;
    let funcs: usize = match funcs {
        None => 1000,
        Some(n) => n
            .parse()
            .map_err(|_| CompileFailure::Usage(format!("bad mega function count `{n}`")))?,
    };
    let m = specframe_workloads::mega_module(seed, funcs);
    let mut req = cfg.base.clone();
    // the synthetic module has no profiling entry point; degrade the
    // profile-guided modes exactly like `specc --mega` does
    if req.spec == "profile" {
        req.spec = "heuristic".into();
    }
    if req.control == "profile" {
        req.control = "static".into();
    }
    compile_module(m, &req)
}

/// Parses an already-read module source through the service's base
/// request — the programmatic equivalent of a `compile` request, used by
/// tests that want the response line *and* the output.
pub fn compile_source(cfg: &ServeConfig, src: &str) -> Result<CompileOutput, CompileFailure> {
    let m = parse_module(src).map_err(|e| CompileFailure::Parse(e.to_string()))?;
    specframe_ir::verify_module(&m).map_err(|e| CompileFailure::Parse(e.to_string()))?;
    compile_module(m, &cfg.base)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_with_cache(dir: Option<std::path::PathBuf>) -> ServeConfig {
        ServeConfig {
            base: CompileRequest {
                spec: "heuristic".into(),
                control: "static".into(),
                cache_dir: dir,
                ..Default::default()
            },
            verbose: true,
        }
    }

    #[test]
    fn blank_and_comment_lines_produce_no_response() {
        let cfg = cfg_with_cache(None);
        let mut r = String::new();
        assert_eq!(handle_request(&cfg, "", &mut r), ServeAction::Continue);
        assert_eq!(
            handle_request(&cfg, "  # hi", &mut r),
            ServeAction::Continue
        );
        assert_eq!(r, "");
    }

    #[test]
    fn quit_stops_and_unknown_is_usage_error() {
        let cfg = cfg_with_cache(None);
        let mut r = String::new();
        assert_eq!(handle_request(&cfg, "quit", &mut r), ServeAction::Quit);
        assert_eq!(
            handle_request(&cfg, "bogus x", &mut r),
            ServeAction::Continue
        );
        assert!(r.contains("err in=bogus code=1"), "{r}");
    }

    #[test]
    fn stats_without_cache_reports_disabled() {
        let cfg = cfg_with_cache(None);
        let mut r = String::new();
        handle_request(&cfg, "stats", &mut r);
        assert_eq!(r, "ok in=stats cache=disabled\n");
    }

    #[test]
    fn mega_request_compiles_and_reports_counts() {
        let dir = std::env::temp_dir().join(format!("specframe-serve-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = cfg_with_cache(Some(dir.clone()));
        let mut cold = String::new();
        handle_request(&cfg, "mega 7:20", &mut cold);
        assert!(
            cold.contains("ok in=mega:7:20 funcs=20 hits=0 misses=20"),
            "{cold}"
        );
        assert!(cold.contains("fn f0 miss\n"), "{cold}");
        let mut warm = String::new();
        handle_request(&cfg, "mega 7:20", &mut warm);
        assert!(warm.contains("funcs=20 hits=20 misses=0"), "{warm}");
        assert!(warm.contains("fn f0 hit\n"), "{warm}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
