//! The `specc --serve` compile service.
//!
//! A long-lived `specc` that accepts a stream of module compile requests
//! and answers with per-function status, backed by the persistent
//! per-function cache — so a fleet recompiling mostly-unchanged modules
//! pays only for the diff. Two transports share one request grammar:
//!
//! * **stdin** (`--serve`): one request per line on stdin, one response
//!   block per request on stdout, until `quit`/EOF;
//! * **queue directory** (`--serve-queue DIR`): every `*.req` file in
//!   `DIR` (sorted by name) is drained — the first non-empty line is the
//!   request, the response block is written to `<stem>.resp` via temp
//!   file + rename, and the `.req` is removed. One drain pass, then exit:
//!   deterministic for scripting; a fleet loops it.
//!
//! The queue protocol is crash-safe and idempotent (see DESIGN.md
//! "Failure domains & crash-recovery contract"):
//!
//! * a `.req` whose `.resp` already exists was fully served by a drain
//!   that crashed inside the write-resp/remove-req window — it is
//!   *skipped* (the stale `.req` is removed), so re-draining after a
//!   crash double-serves into a byte-identical no-op;
//! * an unreadable or malformed `.req` is *quarantined* to `<stem>.err`
//!   (with the reason inside) and the drain continues — one poisoned
//!   request can no longer abort the whole queue;
//! * an open-time fsck removes orphaned `.resp.tmp` files and sweeps
//!   stale cache `.tmp-*` debris left by a crashed writer.
//!
//! Request grammar (tokens are whitespace-separated; blank lines and
//! `#` comments are skipped):
//!
//! ```text
//! compile PATH [-o OUT] [--deadline-ms N]  # compile the module file at PATH
//! mega SEED[:FUNCS] [-o OUT] [--deadline-ms N] # compile the synthetic mega-module
//! stats                     # report cache entry count and bytes
//! quit                      # stop serving (stdin transport)
//! ```
//!
//! Responses are single-line, machine-parseable:
//!
//! ```text
//! ok in=<request> funcs=N hits=H misses=M stale=S evicts=E retries=R ioerr=I fallbacks=F wall_ms=T
//! err in=<request> code=C msg=<message, newlines folded>
//! ```
//!
//! `code=5 msg=deadline` marks a request that exceeded its deadline: the
//! compile was cancelled cooperatively at a pass boundary, no cache
//! entries were written, and the service keeps serving. With `--verbose`,
//! `fn <name> <hit|miss|stale|compiled>` lines precede the `ok` line (one
//! per function, module order). The optimized module text is written to
//! OUT when `-o` is given and is never printed to the response stream —
//! the protocol stays line-oriented.

use crate::pipeline::{compile_module, CompileFailure, CompileOutput, CompileRequest};
use specframe_core::{crashpoint, FuncCache};
use specframe_ir::display::print_module;
use specframe_ir::parse_module;
use std::io::{self, BufRead, Write};
use std::path::Path;
use std::time::Instant;

/// Service configuration: the base compile request every module request
/// starts from (carrying `--spec`, `--jobs`, `--cache-dir`, …) plus the
/// transport options.
pub struct ServeConfig {
    /// Template request; per-request handling clones and adapts it.
    pub base: CompileRequest,
    /// Emit per-function `fn <name> <outcome>` status lines.
    pub verbose: bool,
}

/// What the caller should do after one request.
#[derive(Debug, PartialEq, Eq)]
pub enum ServeAction {
    /// Keep reading requests.
    Continue,
    /// Stop serving (`quit`).
    Quit,
}

/// Serves requests from `input` until `quit` or EOF. Returns how many
/// compile requests were handled.
pub fn serve_stdin(
    cfg: &ServeConfig,
    input: &mut dyn BufRead,
    out: &mut dyn Write,
) -> io::Result<usize> {
    let mut handled = 0;
    for line in input.lines() {
        let line = line?;
        let mut response = String::new();
        let action = handle_request(cfg, &line, &mut response);
        out.write_all(response.as_bytes())?;
        out.flush()?;
        if !response.is_empty() {
            handled += 1;
        }
        if action == ServeAction::Quit {
            break;
        }
    }
    Ok(handled)
}

/// What one queue drain did — the convergence numbers the chaos harness
/// and `specc --serve-queue`'s summary line report.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Requests served to a fresh `.resp` this pass.
    pub handled: usize,
    /// Requests skipped because their `.resp` already existed (a prior
    /// drain crashed between writing the response and removing the
    /// request); the stale `.req` is removed, completing the transaction.
    pub skipped: usize,
    /// Unreadable requests quarantined to `<stem>.err`.
    pub quarantined: usize,
    /// Crash debris removed by the open-time fsck: orphaned `.resp.tmp`
    /// files in the queue plus stale `.tmp-*` files in the cache.
    pub swept: usize,
}

/// Drains every `*.req` file in `dir` (sorted by file name), writing
/// `<stem>.resp` next to each and removing the request file. Crash-safe
/// and idempotent per the module contract; one bad request quarantines
/// instead of aborting the drain.
pub fn serve_queue(cfg: &ServeConfig, dir: &Path) -> io::Result<DrainReport> {
    let mut rep = DrainReport::default();

    // open-time fsck: a crash between writing `.resp.tmp` and renaming it
    // leaves an orphan; its `.req` survived, so the retry below rewrites
    // the response from scratch — the orphan is pure debris
    let mut reqs: Vec<std::path::PathBuf> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let p = entry?.path();
        let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.ends_with(".resp.tmp") {
            if std::fs::remove_file(&p).is_ok() {
                rep.swept += 1;
            }
        } else if p.extension().and_then(|e| e.to_str()) == Some("req") {
            reqs.push(p);
        }
    }
    // cache-side fsck: debris from a writer killed inside its store()
    if let Some(cache_dir) = &cfg.base.cache_dir {
        rep.swept += FuncCache::open(cache_dir).sweep_stale_tmps().unwrap_or(0);
    }

    reqs.sort();
    for req_path in reqs {
        let resp_path = req_path.with_extension("resp");
        if resp_path.exists() {
            // already served by a drain that crashed pre-remove: finish
            // the transaction (remove the `.req`), don't recompute — the
            // committed `.resp` is the authoritative answer
            let _ = std::fs::remove_file(&req_path);
            rep.skipped += 1;
            continue;
        }
        let line = match std::fs::read_to_string(&req_path) {
            Ok(text) => match text
                .lines()
                .find(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
            {
                Some(l) => l.to_string(),
                None => String::new(),
            },
            Err(e) => {
                quarantine(&req_path, &format!("unreadable request: {e}\n"));
                rep.quarantined += 1;
                continue;
            }
        };
        let mut response = String::new();
        // `quit` has no meaning for a one-pass drain; treat it as a no-op
        let _ = handle_request(cfg, &line, &mut response);
        let tmp = req_path.with_extension("resp.tmp");
        std::fs::write(&tmp, response)?;
        crashpoint::hit("queue-pre-resp-rename");
        std::fs::rename(&tmp, &resp_path)?;
        crashpoint::hit("queue-pre-remove-req");
        std::fs::remove_file(&req_path)?;
        rep.handled += 1;
    }
    Ok(rep)
}

/// Moves a poisoned request aside as `<stem>.err` (reason inside, written
/// via temp + rename like every other queue artifact) so the drain can
/// continue past it. Best-effort: quarantine failing must not take the
/// drain down with it.
fn quarantine(req_path: &Path, reason: &str) {
    let err_path = req_path.with_extension("err");
    let tmp = req_path.with_extension("err.tmp");
    if std::fs::write(&tmp, reason).is_ok() && std::fs::rename(&tmp, &err_path).is_ok() {
        let _ = std::fs::remove_file(req_path);
    }
}

/// Handles one request line, appending the response block (possibly
/// empty, for blanks/comments) to `response`.
pub fn handle_request(cfg: &ServeConfig, line: &str, response: &mut String) -> ServeAction {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let Some(&cmd) = tokens.first() else {
        return ServeAction::Continue;
    };
    if cmd.starts_with('#') {
        return ServeAction::Continue;
    }
    match cmd {
        "quit" => ServeAction::Quit,
        "stats" => {
            match &cfg.base.cache_dir {
                None => response.push_str("ok in=stats cache=disabled\n"),
                Some(dir) => match FuncCache::open(dir).entry_stats() {
                    Ok((n, bytes)) => {
                        response.push_str(&format!("ok in=stats entries={n} bytes={bytes}\n"))
                    }
                    Err(e) => respond_err(response, "stats", 3, &e.to_string()),
                },
            }
            ServeAction::Continue
        }
        "compile" | "mega" => {
            handle_compile(cfg, cmd, &tokens, response);
            ServeAction::Continue
        }
        other => {
            respond_err(response, other, 1, &format!("unknown request `{other}`"));
            ServeAction::Continue
        }
    }
}

fn respond_err(response: &mut String, input: &str, code: u8, msg: &str) {
    let msg = msg.replace('\n', "; ");
    response.push_str(&format!("err in={input} code={code} msg={msg}\n"));
}

fn handle_compile(cfg: &ServeConfig, cmd: &str, tokens: &[&str], response: &mut String) {
    let Some(arg) = tokens.get(1) else {
        respond_err(response, cmd, 1, &format!("`{cmd}` needs an argument"));
        return;
    };
    let input_label = format!("{cmd}:{arg}");
    let mut out_path: Option<&str> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut rest = tokens[2..].iter();
    while let Some(&t) = rest.next() {
        match t {
            "-o" => match rest.next() {
                Some(&p) => out_path = Some(p),
                None => {
                    respond_err(response, &input_label, 1, "-o needs a path");
                    return;
                }
            },
            "--deadline-ms" => match rest.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) => deadline_ms = Some(n),
                None => {
                    respond_err(response, &input_label, 1, "--deadline-ms needs a number");
                    return;
                }
            },
            other => {
                respond_err(
                    response,
                    &input_label,
                    1,
                    &format!("unknown token `{other}`"),
                );
                return;
            }
        }
    }

    let t0 = Instant::now();
    let result = match cmd {
        "compile" => compile_file(cfg, arg, deadline_ms),
        _ => compile_mega(cfg, arg, deadline_ms),
    };
    match result {
        // the deadline response is a fixed shape: the service stays up,
        // nothing was cached, and clients key off `code=5 msg=deadline`
        Err(e) if e.exit_code() == 5 => respond_err(response, &input_label, 5, "deadline"),
        Err(e) => respond_err(response, &input_label, e.exit_code(), &e.to_string()),
        Ok(out) => {
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            if let Some(p) = out_path {
                if let Err(e) = std::fs::write(p, print_module(&out.module)) {
                    respond_err(response, &input_label, 3, &format!("writing {p}: {e}"));
                    return;
                }
            }
            if cfg.verbose {
                for (fi, f) in out.module.funcs.iter().enumerate() {
                    let outcome = out
                        .report
                        .cache_outcomes
                        .get(fi)
                        .map_or("compiled", |o| o.name());
                    response.push_str(&format!("fn {} {outcome}\n", f.name));
                }
            }
            let c = out.report.cache;
            response.push_str(&format!(
                "ok in={input_label} funcs={} hits={} misses={} stale={} evicts={} \
                 retries={} ioerr={} fallbacks={} wall_ms={wall_ms:.1}\n",
                out.module.funcs.len(),
                c.hits,
                c.misses,
                c.stale,
                c.evicts,
                c.retries,
                c.io_errors,
                out.report.stats.spec_fallbacks,
            ));
        }
    }
}

/// The base request adapted with one request's `--deadline-ms` token.
fn with_deadline(cfg: &ServeConfig, deadline_ms: Option<u64>) -> CompileRequest {
    let mut req = cfg.base.clone();
    if deadline_ms.is_some() {
        req.deadline_ms = deadline_ms;
    }
    req
}

fn compile_file(
    cfg: &ServeConfig,
    path: &str,
    deadline_ms: Option<u64>,
) -> Result<CompileOutput, CompileFailure> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| CompileFailure::Usage(format!("reading {path}: {e}")))?;
    crate::pipeline::compile(&src, &with_deadline(cfg, deadline_ms))
}

fn compile_mega(
    cfg: &ServeConfig,
    arg: &str,
    deadline_ms: Option<u64>,
) -> Result<CompileOutput, CompileFailure> {
    let (seed, funcs) = match arg.split_once(':') {
        Some((s, n)) => (s, Some(n)),
        None => (arg, None),
    };
    let seed: u64 = seed
        .parse()
        .map_err(|_| CompileFailure::Usage(format!("bad mega seed `{seed}`")))?;
    let funcs: usize = match funcs {
        None => 1000,
        Some(n) => n
            .parse()
            .map_err(|_| CompileFailure::Usage(format!("bad mega function count `{n}`")))?,
    };
    let m = specframe_workloads::mega_module(seed, funcs);
    let mut req = with_deadline(cfg, deadline_ms);
    // the synthetic module has no profiling entry point; degrade the
    // profile-guided modes exactly like `specc --mega` does
    if req.spec == "profile" {
        req.spec = "heuristic".into();
    }
    if req.control == "profile" {
        req.control = "static".into();
    }
    compile_module(m, &req)
}

/// Parses an already-read module source through the service's base
/// request — the programmatic equivalent of a `compile` request, used by
/// tests that want the response line *and* the output.
pub fn compile_source(cfg: &ServeConfig, src: &str) -> Result<CompileOutput, CompileFailure> {
    let m = parse_module(src).map_err(|e| CompileFailure::Parse(e.to_string()))?;
    specframe_ir::verify_module(&m).map_err(|e| CompileFailure::Parse(e.to_string()))?;
    compile_module(m, &cfg.base)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_with_cache(dir: Option<std::path::PathBuf>) -> ServeConfig {
        ServeConfig {
            base: CompileRequest {
                spec: "heuristic".into(),
                control: "static".into(),
                cache_dir: dir,
                ..Default::default()
            },
            verbose: true,
        }
    }

    #[test]
    fn blank_and_comment_lines_produce_no_response() {
        let cfg = cfg_with_cache(None);
        let mut r = String::new();
        assert_eq!(handle_request(&cfg, "", &mut r), ServeAction::Continue);
        assert_eq!(
            handle_request(&cfg, "  # hi", &mut r),
            ServeAction::Continue
        );
        assert_eq!(r, "");
    }

    #[test]
    fn quit_stops_and_unknown_is_usage_error() {
        let cfg = cfg_with_cache(None);
        let mut r = String::new();
        assert_eq!(handle_request(&cfg, "quit", &mut r), ServeAction::Quit);
        assert_eq!(
            handle_request(&cfg, "bogus x", &mut r),
            ServeAction::Continue
        );
        assert!(r.contains("err in=bogus code=1"), "{r}");
    }

    #[test]
    fn stats_without_cache_reports_disabled() {
        let cfg = cfg_with_cache(None);
        let mut r = String::new();
        handle_request(&cfg, "stats", &mut r);
        assert_eq!(r, "ok in=stats cache=disabled\n");
    }

    #[test]
    fn mega_request_compiles_and_reports_counts() {
        let dir = std::env::temp_dir().join(format!("specframe-serve-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = cfg_with_cache(Some(dir.clone()));
        let mut cold = String::new();
        handle_request(&cfg, "mega 7:20", &mut cold);
        assert!(
            cold.contains("ok in=mega:7:20 funcs=20 hits=0 misses=20"),
            "{cold}"
        );
        assert!(cold.contains("fn f0 miss\n"), "{cold}");
        let mut warm = String::new();
        handle_request(&cfg, "mega 7:20", &mut warm);
        assert!(warm.contains("funcs=20 hits=20 misses=0"), "{warm}");
        assert!(warm.contains("fn f0 hit\n"), "{warm}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn deadline_zero_returns_code_5_and_the_service_keeps_serving() {
        let dir = std::env::temp_dir().join(format!(
            "specframe-serve-deadline-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = cfg_with_cache(Some(dir.clone()));
        let mut r = String::new();
        handle_request(&cfg, "mega 3:6 --deadline-ms 0", &mut r);
        assert!(r.contains("err in=mega:3:6 code=5 msg=deadline"), "{r}");
        // no partial (or complete) cache entries from the cancelled request
        assert_eq!(FuncCache::open(&dir).entry_stats().unwrap().0, 0);
        // the session is unharmed: the same request without a deadline works
        let mut ok = String::new();
        handle_request(&cfg, "mega 3:6", &mut ok);
        assert!(ok.contains("ok in=mega:3:6 funcs=6"), "{ok}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_fault_policy_moves_counters_but_not_output() {
        let base = std::env::temp_dir().join(format!(
            "specframe-serve-faults-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        let clean = cfg_with_cache(None);
        let reference = compile_mega(&clean, "5:8", None).unwrap();
        let want = print_module(&reference.module);
        for policy in ["enospc:2", "eio-read:7:2", "torn-write:2"] {
            let mut cfg = cfg_with_cache(Some(base.join(policy.replace(':', "_"))));
            cfg.base.cache_fault_policy = Some(policy.into());
            for round in 0..2 {
                let out = compile_mega(&cfg, "5:8", None)
                    .unwrap_or_else(|e| panic!("{policy} round {round}: {e}"));
                assert_eq!(
                    print_module(&out.module),
                    want,
                    "{policy} round {round}: output changed under faults"
                );
                let c = out.report.cache;
                assert_eq!(c.probes(), 8, "{policy} round {round}");
                assert!(c.retries <= c.io_errors, "{policy}: {c:?}");
            }
        }
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn queue_drain_quarantines_skips_and_sweeps() {
        let dir =
            std::env::temp_dir().join(format!("specframe-serve-queue-fsck-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // a crash inside the write-resp/remove-req window left both files
        std::fs::write(dir.join("10-a.req"), "stats\n").unwrap();
        std::fs::write(dir.join("10-a.resp"), "precommitted\n").unwrap();
        // an unreadable request (invalid UTF-8)
        std::fs::write(dir.join("20-b.req"), [0xff, 0xfe, 0x00]).unwrap();
        // an orphaned response temp from a crash pre-rename
        std::fs::write(dir.join("30-c.resp.tmp"), "half a response").unwrap();
        // a healthy request
        std::fs::write(dir.join("40-d.req"), "stats\n").unwrap();

        let cfg = cfg_with_cache(None);
        let rep = serve_queue(&cfg, &dir).unwrap();
        assert_eq!(
            rep,
            DrainReport {
                handled: 1,
                skipped: 1,
                quarantined: 1,
                swept: 1
            }
        );
        // the skipped transaction completed: .req gone, .resp untouched
        assert!(!dir.join("10-a.req").exists());
        assert_eq!(
            std::fs::read_to_string(dir.join("10-a.resp")).unwrap(),
            "precommitted\n"
        );
        // the poisoned request is quarantined with its reason
        assert!(!dir.join("20-b.req").exists());
        let err = std::fs::read_to_string(dir.join("20-b.err")).unwrap();
        assert!(err.contains("unreadable request"), "{err}");
        // the orphan is swept, the healthy request served
        assert!(!dir.join("30-c.resp.tmp").exists());
        assert!(std::fs::read_to_string(dir.join("40-d.resp"))
            .unwrap()
            .contains("ok in=stats"));
        // idempotent: a second drain finds nothing to do and changes nothing
        assert_eq!(serve_queue(&cfg, &dir).unwrap(), DrainReport::default());
        assert_eq!(
            std::fs::read_to_string(dir.join("10-a.resp")).unwrap(),
            "precommitted\n"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
