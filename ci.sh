#!/usr/bin/env bash
# Tier-1 gate: build, test, lint, format, golden suite, bench smoke.
# Run from the repo root. Hermetic: no network access required.
set -euo pipefail
cd "$(dirname "$0")"

# pin the property-test RNG so CI failures reproduce locally with the
# same seed (see DESIGN.md "Property-test determinism")
export PROPTEST_SEED="${PROPTEST_SEED:-6840025361058438157}"

cargo build --release
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --all -- --check

# FileCheck-style golden tests over the textual pass dumps
cargo run --release -q -p spectest -- -q tests/golden

# differential misspeculation oracle: every workload and a batch of seeded
# random programs, every optimizer config, under the adversarial ALAT
# fault matrix — results must be bit-identical to the unoptimized
# reference interpreter no matter what the ALAT does
cargo run --release -q -p specframe-fuzzdiff --bin fuzzdiff -- \
  --seed "${FUZZDIFF_SEED:-1}" --random 16 --time-budget 240 \
  --policy default --policy always-miss \
  --policy random:1 --policy random:2 --policy random:3 \
  --policy flash-clear

# compile-time smoke: writes BENCH_ci.json (mean ms per workload)
cargo run --release -q -p specframe-bench --bin ci_smoke
