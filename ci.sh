#!/usr/bin/env bash
# Tier-1 gate: build, test, lint, format, golden suite, bench smoke.
# Run from the repo root. Hermetic: no network access required.
set -euo pipefail
cd "$(dirname "$0")"

# pin the property-test RNG so CI failures reproduce locally with the
# same seed (see DESIGN.md "Property-test determinism")
export PROPTEST_SEED="${PROPTEST_SEED:-6840025361058438157}"

cargo build --release
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --all -- --check

# FileCheck-style golden tests over the textual pass dumps — once as
# written, once with every pass boundary re-verified and every lowered
# function audited for ld.a/check pairing (the outputs must not change:
# verification is observation, not transformation)
cargo run --release -q -p spectest -- -q tests/golden
cargo run --release -q -p spectest -- -q --verify-each --audit-spec tests/golden

# the same suite re-lowered and re-simulated for the software-recovery
# backend: every case that does not pin epic-specific output (those
# declare `; UNSUPPORTED: target`) must still pass under --target swr
cargo run --release -q -p spectest -- -q --target swr tests/golden

# the speculative-leak fencing contract over the whole corpus: every
# compiled module's lowering must fence to a clean re-audit with the
# architectural result unchanged (checked post-compile, so pinned golden
# output is untouched)
cargo run --release -q -p spectest -- -q --audit-leaks tests/golden

# expected-fail leak smoke: a hand-written advanced load whose value hits
# an address sink inside its speculation window MUST be rejected by
# --audit-leaks (recovery exhausts: exit 4), with the site report and a
# CONFIRMED forced-eviction witness on stderr; --fence-leaks on the same
# input must repair it (exit 0)
leak_err="$(cargo run --release -q -p specframe --bin specc -- \
  tests/smoke/leaky-motion.ir --spec none --control off --audit-leaks \
  -o /dev/null 2>&1)" \
  && { echo "ci.sh: --audit-leaks let the leaky motion through"; exit 1; } \
  || leak_rc=$?
[ "${leak_rc:-0}" -eq 4 ] \
  || { echo "ci.sh: leak smoke exit $leak_rc, wanted 4"; echo "$leak_err"; exit 1; }
echo "$leak_err" | grep -q "speculative leak in \`main\`" \
  || { echo "ci.sh: no leak site report"; echo "$leak_err"; exit 1; }
echo "$leak_err" | grep -q "CONFIRMED under \`--fault-policy evict-at:" \
  || { echo "ci.sh: no confirmed eviction witness"; echo "$leak_err"; exit 1; }
cargo run --release -q -p specframe --bin specc -- \
  tests/smoke/leaky-motion.ir --spec none --control off --fence-leaks \
  -o /dev/null 2>/dev/null \
  || { echo "ci.sh: --fence-leaks failed to repair the leaky motion"; exit 1; }
echo "leak smoke: --audit-leaks rejected with witness, --fence-leaks repaired"

# golden parity through the compile cache: the same suite, cold (populating
# a fresh cache) and warm (replaying from it) — FileCheck still passing on
# the warm run proves cached replay is byte-identical where it matters
golden_cache="$(mktemp -d)"
trap 'rm -rf "$golden_cache"' EXIT
cargo run --release -q -p spectest -- -q --cache-dir "$golden_cache" tests/golden
cargo run --release -q -p spectest -- -q --cache-dir "$golden_cache" tests/golden
echo "golden suite: cold + warm cache runs green"

# compile-service smoke: cold then warm --serve sessions in separate
# processes over one cache dir; the warm response must be all hits and the
# served outputs byte-identical
serve_dir="$(mktemp -d)"
printf 'mega 42:400 -o %s/cold.ir\nquit\n' "$serve_dir" \
  | cargo run --release -q -p specframe --bin specc -- --serve --cache-dir "$serve_dir/cache" \
  > "$serve_dir/cold.resp"
grep -q "ok in=mega:42:400 funcs=400 hits=0 misses=400" "$serve_dir/cold.resp" \
  || { echo "ci.sh: cold serve response unexpected"; cat "$serve_dir/cold.resp"; exit 1; }
printf 'mega 42:400 -o %s/warm.ir\nquit\n' "$serve_dir" \
  | cargo run --release -q -p specframe --bin specc -- --serve --cache-dir "$serve_dir/cache" \
  > "$serve_dir/warm.resp"
grep -q "ok in=mega:42:400 funcs=400 hits=400 misses=0 stale=0" "$serve_dir/warm.resp" \
  || { echo "ci.sh: warm serve response not all-hits"; cat "$serve_dir/warm.resp"; exit 1; }
cmp -s "$serve_dir/cold.ir" "$serve_dir/warm.ir" \
  || { echo "ci.sh: served cold/warm outputs differ"; exit 1; }
cargo run --release -q -p specframe --bin specc -- cache verify --cache-dir "$serve_dir/cache" > /dev/null \
  || { echo "ci.sh: cache verify found bad entries"; exit 1; }
rm -rf "$serve_dir"
echo "compile service smoke: cold/warm byte-identical, warm all-hits, cache verifies clean"

# chaos gate: kill the real specc at every storage/queue crashpoint
# mid-drain (SPECFRAME_CRASH_AT), restart it, and require convergence —
# cache verifies clean, re-drain completes, artifacts byte-identical to an
# uncrashed reference (tests/chaos.rs drives the matrix)
cargo test -q --release -p specframe --test chaos

# golden parity under injected storage faults: the whole suite through a
# cache whose storage tears writes and errors reads — retries repair
# underneath, but FileCheck still passing proves no output byte moved
fault_cache="$(mktemp -d)"
cargo run --release -q -p spectest -- -q --cache-dir "$fault_cache" \
  --cache-fault-policy torn-write:2 tests/golden
cargo run --release -q -p spectest -- -q --cache-dir "$fault_cache" \
  --cache-fault-policy eio-read:7:9 tests/golden
rm -rf "$fault_cache"
echo "golden suite: green under torn-write:2 (cold) and eio-read:7:9 (warm)"

# storage-fault byte-identity at every job count: the mega workload
# compiled through a torn-write cache must equal the fault-free compile
fault_dir="$(mktemp -d)"
cargo run --release -q -p specframe --bin specc -- --mega 42:200 \
  -o "$fault_dir/clean.ir"
for j in 1 2 4; do
  cargo run --release -q -p specframe --bin specc -- --mega 42:200 --jobs "$j" \
    --cache-dir "$fault_dir/cache$j" --cache-fault-policy torn-write:2 \
    -o "$fault_dir/fault$j.ir"
  cmp -s "$fault_dir/clean.ir" "$fault_dir/fault$j.ir" \
    || { echo "ci.sh: fault-policy output diverged at --jobs $j"; exit 1; }
done
rm -rf "$fault_dir"
echo "storage-fault smoke: byte-identical at --jobs 1/2/4 under torn-write:2"

# deadline smoke: an already-expired deadline must abort with exit code 5
cargo run --release -q -p specframe --bin specc -- --mega 42:200 \
  --deadline-ms 0 -o /dev/null 2>/dev/null \
  && { echo "ci.sh: --deadline-ms 0 did not fire"; exit 1; } || dl_rc=$?
[ "${dl_rc:-0}" -eq 5 ] \
  || { echo "ci.sh: deadline smoke exit $dl_rc, wanted 5"; exit 1; }
echo "deadline smoke: --deadline-ms 0 exits 5"

# differential misspeculation oracle: every workload and a batch of seeded
# random programs, every optimizer config, under the adversarial ALAT
# fault matrix — results must be bit-identical to the unoptimized
# reference interpreter no matter what the ALAT does
cargo run --release -q -p specframe-fuzzdiff --bin fuzzdiff -- \
  --seed "${FUZZDIFF_SEED:-1}" --random 16 --time-budget 240 \
  --policy default --policy always-miss \
  --policy random:1 --policy random:2 --policy random:3 \
  --policy flash-clear

# negative control: --break-checks deletes one check from every optimized
# module, which MUST make the oracle fail (proving it has teeth), and
# --reduce-on-failure must shrink the failure to a .spec-ready repro.
# Seed 4 at 40 steps is a known-diverging case (see fuzzdiff tests).
sabotage_out="$(cargo run --release -q -p specframe-fuzzdiff --bin fuzzdiff -- \
  --seed 4 --steps 40 --random 1 --skip-workloads \
  --policy always-miss --break-checks --reduce-on-failure 2>/dev/null)" \
  && { echo "ci.sh: sabotaged fuzzdiff unexpectedly passed"; exit 1; } || true
echo "$sabotage_out" | grep -q "RUN: specc" \
  || { echo "ci.sh: no .spec repro in sabotage output"; exit 1; }
echo "$sabotage_out" | grep -q "; reduce: .* probes" \
  || { echo "ci.sh: no reduction stats in sabotage output"; exit 1; }
echo "fuzzdiff sabotage smoke: oracle failed and reduced as expected"

# compile-time smoke: writes BENCH_ci.json (mean ms per workload, plus
# the reducer smoke's probe/shrink numbers)
cargo run --release -q -p specframe-bench --bin ci_smoke
