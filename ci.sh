#!/usr/bin/env bash
# Tier-1 gate: build, test, lint, format, golden suite, bench smoke.
# Run from the repo root. Hermetic: no network access required.
set -euo pipefail
cd "$(dirname "$0")"

# pin the property-test RNG so CI failures reproduce locally with the
# same seed (see DESIGN.md "Property-test determinism")
export PROPTEST_SEED="${PROPTEST_SEED:-6840025361058438157}"

cargo build --release
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --all -- --check

# FileCheck-style golden tests over the textual pass dumps
cargo run --release -q -p spectest -- -q tests/golden

# compile-time smoke: writes BENCH_ci.json (mean ms per workload)
cargo run --release -q -p specframe-bench --bin ci_smoke
