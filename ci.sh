#!/usr/bin/env bash
# Tier-1 gate: build, test, lint, format, golden suite, bench smoke.
# Run from the repo root. Hermetic: no network access required.
set -euo pipefail
cd "$(dirname "$0")"

# pin the property-test RNG so CI failures reproduce locally with the
# same seed (see DESIGN.md "Property-test determinism")
export PROPTEST_SEED="${PROPTEST_SEED:-6840025361058438157}"

cargo build --release
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --all -- --check

# FileCheck-style golden tests over the textual pass dumps — once as
# written, once with every pass boundary re-verified and every lowered
# function audited for ld.a/check pairing (the outputs must not change:
# verification is observation, not transformation)
cargo run --release -q -p spectest -- -q tests/golden
cargo run --release -q -p spectest -- -q --verify-each --audit-spec tests/golden

# golden parity through the compile cache: the same suite, cold (populating
# a fresh cache) and warm (replaying from it) — FileCheck still passing on
# the warm run proves cached replay is byte-identical where it matters
golden_cache="$(mktemp -d)"
trap 'rm -rf "$golden_cache"' EXIT
cargo run --release -q -p spectest -- -q --cache-dir "$golden_cache" tests/golden
cargo run --release -q -p spectest -- -q --cache-dir "$golden_cache" tests/golden
echo "golden suite: cold + warm cache runs green"

# compile-service smoke: cold then warm --serve sessions in separate
# processes over one cache dir; the warm response must be all hits and the
# served outputs byte-identical
serve_dir="$(mktemp -d)"
printf 'mega 42:400 -o %s/cold.ir\nquit\n' "$serve_dir" \
  | cargo run --release -q -p specframe --bin specc -- --serve --cache-dir "$serve_dir/cache" \
  > "$serve_dir/cold.resp"
grep -q "ok in=mega:42:400 funcs=400 hits=0 misses=400" "$serve_dir/cold.resp" \
  || { echo "ci.sh: cold serve response unexpected"; cat "$serve_dir/cold.resp"; exit 1; }
printf 'mega 42:400 -o %s/warm.ir\nquit\n' "$serve_dir" \
  | cargo run --release -q -p specframe --bin specc -- --serve --cache-dir "$serve_dir/cache" \
  > "$serve_dir/warm.resp"
grep -q "ok in=mega:42:400 funcs=400 hits=400 misses=0 stale=0" "$serve_dir/warm.resp" \
  || { echo "ci.sh: warm serve response not all-hits"; cat "$serve_dir/warm.resp"; exit 1; }
cmp -s "$serve_dir/cold.ir" "$serve_dir/warm.ir" \
  || { echo "ci.sh: served cold/warm outputs differ"; exit 1; }
cargo run --release -q -p specframe --bin specc -- cache verify --cache-dir "$serve_dir/cache" > /dev/null \
  || { echo "ci.sh: cache verify found bad entries"; exit 1; }
rm -rf "$serve_dir"
echo "compile service smoke: cold/warm byte-identical, warm all-hits, cache verifies clean"

# differential misspeculation oracle: every workload and a batch of seeded
# random programs, every optimizer config, under the adversarial ALAT
# fault matrix — results must be bit-identical to the unoptimized
# reference interpreter no matter what the ALAT does
cargo run --release -q -p specframe-fuzzdiff --bin fuzzdiff -- \
  --seed "${FUZZDIFF_SEED:-1}" --random 16 --time-budget 240 \
  --policy default --policy always-miss \
  --policy random:1 --policy random:2 --policy random:3 \
  --policy flash-clear

# negative control: --break-checks deletes one check from every optimized
# module, which MUST make the oracle fail (proving it has teeth), and
# --reduce-on-failure must shrink the failure to a .spec-ready repro.
# Seed 4 at 40 steps is a known-diverging case (see fuzzdiff tests).
sabotage_out="$(cargo run --release -q -p specframe-fuzzdiff --bin fuzzdiff -- \
  --seed 4 --steps 40 --random 1 --skip-workloads \
  --policy always-miss --break-checks --reduce-on-failure 2>/dev/null)" \
  && { echo "ci.sh: sabotaged fuzzdiff unexpectedly passed"; exit 1; } || true
echo "$sabotage_out" | grep -q "RUN: specc" \
  || { echo "ci.sh: no .spec repro in sabotage output"; exit 1; }
echo "$sabotage_out" | grep -q "; reduce: .* probes" \
  || { echo "ci.sh: no reduction stats in sabotage output"; exit 1; }
echo "fuzzdiff sabotage smoke: oracle failed and reduced as expected"

# compile-time smoke: writes BENCH_ci.json (mean ms per workload, plus
# the reducer smoke's probe/shrink numbers)
cargo run --release -q -p specframe-bench --bin ci_smoke
