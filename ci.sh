#!/usr/bin/env bash
# Tier-1 gate: build, test, lint, format, golden suite, bench smoke.
# Run from the repo root. Hermetic: no network access required.
set -euo pipefail
cd "$(dirname "$0")"

# pin the property-test RNG so CI failures reproduce locally with the
# same seed (see DESIGN.md "Property-test determinism")
export PROPTEST_SEED="${PROPTEST_SEED:-6840025361058438157}"

cargo build --release
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --all -- --check

# FileCheck-style golden tests over the textual pass dumps — once as
# written, once with every pass boundary re-verified and every lowered
# function audited for ld.a/check pairing (the outputs must not change:
# verification is observation, not transformation)
cargo run --release -q -p spectest -- -q tests/golden
cargo run --release -q -p spectest -- -q --verify-each --audit-spec tests/golden

# differential misspeculation oracle: every workload and a batch of seeded
# random programs, every optimizer config, under the adversarial ALAT
# fault matrix — results must be bit-identical to the unoptimized
# reference interpreter no matter what the ALAT does
cargo run --release -q -p specframe-fuzzdiff --bin fuzzdiff -- \
  --seed "${FUZZDIFF_SEED:-1}" --random 16 --time-budget 240 \
  --policy default --policy always-miss \
  --policy random:1 --policy random:2 --policy random:3 \
  --policy flash-clear

# negative control: --break-checks deletes one check from every optimized
# module, which MUST make the oracle fail (proving it has teeth), and
# --reduce-on-failure must shrink the failure to a .spec-ready repro.
# Seed 4 at 40 steps is a known-diverging case (see fuzzdiff tests).
sabotage_out="$(cargo run --release -q -p specframe-fuzzdiff --bin fuzzdiff -- \
  --seed 4 --steps 40 --random 1 --skip-workloads \
  --policy always-miss --break-checks --reduce-on-failure 2>/dev/null)" \
  && { echo "ci.sh: sabotaged fuzzdiff unexpectedly passed"; exit 1; } || true
echo "$sabotage_out" | grep -q "RUN: specc" \
  || { echo "ci.sh: no .spec repro in sabotage output"; exit 1; }
echo "$sabotage_out" | grep -q "; reduce: .* probes" \
  || { echo "ci.sh: no reduction stats in sabotage output"; exit 1; }
echo "fuzzdiff sabotage smoke: oracle failed and reduced as expected"

# compile-time smoke: writes BENCH_ci.json (mean ms per workload, plus
# the reducer smoke's probe/shrink numbers)
cargo run --release -q -p specframe-bench --bin ci_smoke
